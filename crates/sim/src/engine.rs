//! The deterministic discrete-event engine realizing the system model of
//! Section 2.2: `n` processes with drift-free offset clocks, point-to-point
//! messages with per-message delays from a [`DelaySpec`], and
//! event-triggered state machines ([`Node`]).
//!
//! Determinism: events are processed in `(real time, class, sequence)` order,
//! where simultaneous events order deliveries before timers before
//! invocations; all delay models are pure functions. Re-running the same
//! [`SimConfig`] always produces the identical [`Run`] — the property the
//! shifting experiments (Theorem 1) rely on.

use crate::delay::DelaySpec;
use crate::faults::{FaultPlan, InjectedFault};
use crate::node::{Effects, Node};
use crate::run::{MsgRecord, OpRecord, Run, StepTrigger, ViewStep};
use crate::schedule::Schedule;
use crate::time::{ModelParams, Pid, Time};
use lintime_adt::spec::Invocation;
use lintime_adt::value::Value;
use lintime_obs::{EventCategory, Obs};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::collections::VecDeque;

/// Complete configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Model parameters `(n, d, u, ε)`.
    pub params: ModelParams,
    /// Clock offsets `C`: local = real + `offsets[i]`.
    pub offsets: Vec<Time>,
    /// Message-delay assignment `D`.
    pub delay: DelaySpec,
    /// Invocation schedule.
    pub schedule: Schedule,
    /// Record per-message send/receive times (needed for record-level
    /// admissibility checks and chopping).
    pub record_messages: bool,
    /// Record per-process views (needed for view-equivalence checks).
    pub record_views: bool,
    /// Hard stop: ignore events after this real time (None = run to
    /// quiescence).
    pub max_real_time: Option<Time>,
    /// Hard stop: maximum number of events to process.
    pub max_events: u64,
    /// Fault schedule to inject (None = fault-free).
    pub faults: Option<FaultPlan>,
    /// Observability bundle. [`Obs::off`] (the default) reduces every
    /// instrumentation point to a single branch.
    pub obs: Obs,
    /// Live operation-event sink for streaming consumers (e.g. the online
    /// linearizability checker). `None` (the default) keeps the benched
    /// offline path untouched; send errors are ignored so a departed
    /// receiver never affects the run.
    pub op_sink: Option<std::sync::mpsc::Sender<OpEvent>>,
    /// Open-loop admission epoch: after this many open arrivals have been
    /// admitted, further admissions hold until *every* pending operation has
    /// responded, and the next wave starts one tick later. The quiescent
    /// instant between epochs is a settled cut for streaming checkers, so
    /// their resident window stays bounded by roughly the epoch size even
    /// under sustained overload — without it, back-to-back admissions keep
    /// some process busy at every instant and no sound cut ever appears.
    /// `None` (the default) admits immediately on response.
    pub admission_epoch: Option<u64>,
}

/// A structured operation event emitted through [`SimConfig::op_sink`] the
/// moment the engine records it, in simulated-time order.
#[derive(Clone, Debug)]
pub enum OpEvent {
    /// `pid` invoked `op(arg)` at real time `t`.
    Invoke {
        /// Invoking process.
        pid: Pid,
        /// Real (simulated) invocation time.
        t: Time,
        /// Operation name.
        op: &'static str,
        /// Operation argument.
        arg: Value,
    },
    /// `pid`'s outstanding invocation responded with `ret` at real time `t`.
    Respond {
        /// Responding process.
        pid: Pid,
        /// Real (simulated) response time.
        t: Time,
        /// Response value.
        ret: Value,
    },
}

impl SimConfig {
    /// A configuration with synchronized clocks (all offsets 0), the given
    /// delay spec, and an empty schedule.
    pub fn new(params: ModelParams, delay: DelaySpec) -> Self {
        SimConfig {
            params,
            offsets: vec![Time::ZERO; params.n],
            delay,
            schedule: Schedule::new(),
            record_messages: false,
            record_views: false,
            max_real_time: None,
            max_events: 50_000_000,
            faults: None,
            obs: Obs::off(),
            op_sink: None,
            admission_epoch: None,
        }
    }

    /// Set the clock offsets (must have length `n`).
    pub fn with_offsets(mut self, offsets: Vec<Time>) -> Self {
        assert_eq!(offsets.len(), self.params.n);
        self.offsets = offsets;
        self
    }

    /// Set the schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enable message and view recording.
    pub fn recording_all(mut self) -> Self {
        self.record_messages = true;
        self.record_views = true;
        self
    }

    /// Inject faults from `plan` (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach an observability bundle (trace sink + metrics registry).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attach a live operation-event sink (see [`OpEvent`]); invocations and
    /// responses are sent the moment the engine records them.
    pub fn with_op_sink(mut self, sink: std::sync::mpsc::Sender<OpEvent>) -> Self {
        self.op_sink = Some(sink);
        self
    }

    /// Hold open-loop admissions for a quiescence barrier after every
    /// `epoch` admissions (see [`SimConfig::admission_epoch`]).
    pub fn with_admission_epoch(mut self, epoch: u64) -> Self {
        self.admission_epoch = Some(epoch);
        self
    }

    /// Structural validity: the configuration can be *executed* at all
    /// (unlike [`SimConfig::admissible`], which asks whether it stays inside
    /// the model — deliberately inadmissible configs are legitimate
    /// experiments). Catches shape errors such as a delay matrix whose
    /// dimensions do not match `n`, which would otherwise panic deep inside
    /// the delivery loop.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.params.n {
            return Err(format!(
                "config has {} clock offsets but n = {}",
                self.offsets.len(),
                self.params.n
            ));
        }
        self.delay.validate_shape(self.params.n)?;
        for t in &self.schedule.timed {
            if t.pid.0 >= self.params.n {
                return Err(format!("schedule invokes at unknown process {}", t.pid));
            }
        }
        for s in &self.schedule.scripts {
            if s.pid.0 >= self.params.n {
                return Err(format!("script runs at unknown process {}", s.pid));
            }
        }
        for t in &self.schedule.open {
            if t.pid.0 >= self.params.n {
                return Err(format!("open arrival at unknown process {}", t.pid));
            }
        }
        if self.admission_epoch == Some(0) {
            return Err("admission epoch must be at least 1".to_string());
        }
        Ok(())
    }

    /// Check configuration admissibility (Section 2.2): clock skews within ε
    /// and the delay spec within `[d - u, d]`.
    pub fn admissible(&self) -> Result<(), String> {
        let max = self.offsets.iter().copied().max().unwrap_or(Time::ZERO);
        let min = self.offsets.iter().copied().min().unwrap_or(Time::ZERO);
        if max - min > self.params.epsilon {
            return Err(format!(
                "clock skew {} exceeds epsilon {}",
                max - min,
                self.params.epsilon
            ));
        }
        if !self.delay.admissible(self.params) {
            return Err("delay spec produces delays outside [d-u, d]".to_string());
        }
        Ok(())
    }

    /// The shifted configuration `shift(·, x̄)` per Theorem 1: offsets become
    /// `c_i − x_i`, matrix delays become `δ_ij − x_i + x_j`, and scheduled
    /// invocations at `p_i` move by `x_i`. Panics if the delay spec is not
    /// pair-wise uniform (only those are shiftable in closed form).
    pub fn shifted(&self, x: &[Time]) -> SimConfig {
        assert_eq!(x.len(), self.params.n);
        let matrix = self
            .delay
            .to_matrix(self.params)
            .expect("only pair-wise uniform delay specs can be shifted");
        let n = self.params.n;
        let shifted_matrix = DelaySpec::matrix_from_fn(n, |i, j| {
            if i == j {
                matrix[i][j]
            } else {
                matrix[i][j] - x[i] + x[j]
            }
        });
        SimConfig {
            params: self.params,
            offsets: self.offsets.iter().zip(x).map(|(c, xi)| *c - *xi).collect(),
            delay: shifted_matrix,
            schedule: self.schedule.shifted(x),
            record_messages: self.record_messages,
            record_views: self.record_views,
            max_real_time: self.max_real_time,
            max_events: self.max_events,
            faults: self.faults.clone(),
            obs: self.obs.clone(),
            op_sink: self.op_sink.clone(),
            admission_epoch: self.admission_epoch,
        }
    }
}

/// Where an invocation event came from. Determines what happens when it
/// reaches a busy process: timed and scripted invocations are model errors
/// (the Section 2.2 user invokes at most one operation at a time), open-loop
/// arrivals queue in the process's ingress queue until the pending operation
/// responds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InvokeSource {
    /// From `Schedule::timed`: fires at an absolute time, errors if busy.
    Timed,
    /// From a `Schedule::scripts` entry: the response schedules the next
    /// scripted invocation (closed loop).
    Script,
    /// From `Schedule::open`: queues if busy, admitted on response.
    Open,
}

/// Event payload in the engine heap.
enum EventKind<M, T> {
    Invoke {
        inv: Invocation,
        source: InvokeSource,
    },
    /// Admit the head of `pid`'s ingress queue, popped at *processing* time.
    /// Carrying the popped invocation in the event instead would race with
    /// same-instant schedule arrivals (which sort first — their sequence
    /// numbers were assigned at setup) and re-queue the head at the back,
    /// breaking per-process FIFO admission.
    AdmitIngress,
    Deliver {
        from: Pid,
        msg: M,
    },
    Timer {
        id: u64,
        tag: T,
    },
}

/// Heap key: `(time, class, seq)`. Lower class processes first at equal
/// times: deliveries (0), then timers (1), then invocations (2).
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: Time,
    class: u8,
    seq: u64,
}

struct Entry<M, T> {
    key: EventKey,
    pid: Pid,
    kind: EventKind<M, T>,
}

impl<M, T> PartialEq for Entry<M, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M, T> Eq for Entry<M, T> {}
impl<M, T> PartialOrd for Entry<M, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, T> Ord for Entry<M, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct ProcState {
    /// Index into `ops` of the pending operation, if any, and where it came
    /// from (scripts only advance on their own operations' responses).
    pending_op: Option<(usize, InvokeSource)>,
    /// Remaining closed-loop script invocations.
    script: VecDeque<Invocation>,
    script_gap: Time,
    /// Open-loop arrivals waiting for the pending operation to respond,
    /// with their arrival times (FIFO admission).
    ingress: VecDeque<(Time, Invocation)>,
}

/// Pre-registered metric handles for the engine hot loop. Registration takes
/// a lock, so it happens once per run ([`EngineMetrics::register`]) and only
/// when observability is active; the loop then pays one branch plus one
/// relaxed atomic per instrumented site.
struct EngineMetrics {
    events: lintime_obs::Counter,
    invocations: lintime_obs::Counter,
    responses: lintime_obs::Counter,
    sends: lintime_obs::Counter,
    deliveries: lintime_obs::Counter,
    timer_fires: lintime_obs::Counter,
    drops: lintime_obs::Counter,
    duplicates: lintime_obs::Counter,
    delay_overrides: lintime_obs::Counter,
    stall_deferrals: lintime_obs::Counter,
    crash_discards: lintime_obs::Counter,
    msg_bytes: lintime_obs::Counter,
    ingress_queued: lintime_obs::Counter,
    ingress_epochs: lintime_obs::Counter,
    ingress_depth: lintime_obs::Gauge,
    delay_draw: lintime_obs::Histogram,
    op_latency: lintime_obs::Histogram,
    ingress_wait: lintime_obs::Histogram,
}

impl EngineMetrics {
    fn register(obs: &Obs) -> EngineMetrics {
        let r = &obs.metrics;
        // Tick buckets bracket the default experiment scale (d = 6000).
        EngineMetrics {
            events: r.counter("sim.events"),
            invocations: r.counter("sim.op.invocations"),
            responses: r.counter("sim.op.responses"),
            sends: r.counter("sim.msg.sends"),
            deliveries: r.counter("sim.msg.deliveries"),
            timer_fires: r.counter("sim.timer.fires"),
            drops: r.counter("sim.fault.drops"),
            duplicates: r.counter("sim.fault.duplicates"),
            delay_overrides: r.counter("sim.fault.delay_overrides"),
            stall_deferrals: r.counter("sim.fault.stall_deferrals"),
            crash_discards: r.counter("sim.fault.crash_discards"),
            msg_bytes: r.counter("sim.msg.bytes"),
            ingress_queued: r.counter("sim.ingress.queued"),
            ingress_epochs: r.counter("sim.ingress.epochs"),
            ingress_depth: r.gauge("sim.ingress.depth"),
            delay_draw: r.histogram("sim.msg.delay_ticks", &[750, 1500, 3000, 6000, 12000, 24000]),
            op_latency: r
                .histogram("sim.op.latency_ticks", &[1500, 3000, 6000, 12000, 24000, 48000]),
            // Queue waits under saturation dwarf per-op latency; exponential
            // buckets up to 256 × d (d = 6000 at default experiment scale).
            ingress_wait: r
                .histogram("sim.ingress.wait_ticks", &[6000, 24000, 96000, 384000, 1_536_000]),
        }
    }
}

/// Run the simulation: one node per process, built by `make_node`.
pub fn simulate<N: Node>(config: &SimConfig, make_node: impl FnMut(Pid) -> N) -> Run {
    simulate_full(config, make_node).0
}

/// Like [`simulate`], but also returns the final node states (useful for
/// inspecting algorithm-internal logs, e.g. the Construction-1 verifier).
pub fn simulate_full<N: Node>(
    config: &SimConfig,
    mut make_node: impl FnMut(Pid) -> N,
) -> (Run, Vec<N>) {
    let params = config.params;
    let n = params.n;

    let mut nodes: Vec<N> = (0..n).map(|i| make_node(Pid(i))).collect();
    let mut heap: BinaryHeap<Reverse<Entry<N::Msg, N::Timer>>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut next_timer_id: u64 = 0;
    let mut dead_timers: HashSet<u64> = HashSet::new();
    // Tags of live timers per process, parallel to ids, for cancellation.
    let mut live_tags: Vec<Vec<(u64, N::Timer)>> = (0..n).map(|_| Vec::new()).collect();
    let mut msg_counters: Vec<u64> = vec![0; n * n];

    let mut procs: Vec<ProcState> = (0..n)
        .map(|_| ProcState {
            pending_op: None,
            script: VecDeque::new(),
            script_gap: Time::ZERO,
            ingress: VecDeque::new(),
        })
        .collect();

    let mut ops: Vec<OpRecord> = Vec::new();
    let mut msgs: Vec<MsgRecord> = Vec::new();
    let mut views: Vec<Vec<ViewStep>> = (0..n).map(|_| Vec::new()).collect();
    let mut errors: Vec<String> = Vec::new();
    let mut delay_violations: u64 = 0;
    let mut last_time = Time::ZERO;
    let mut events: u64 = 0;
    let mut truncated = false;
    let mut msgs_sent: u64 = 0;
    let mut bytes_sent: u64 = 0;
    // Epoch-admission state (see SimConfig::admission_epoch): admissions
    // this epoch, whether the barrier is draining, and how many operations
    // are currently pending across all processes (any source).
    let mut epoch_admitted: u64 = 0;
    let mut draining = false;
    let mut pending_count: usize = 0;
    let mut faults: Vec<InjectedFault> = Vec::new();
    // Which (pid, stall-window-end) deferrals were already recorded, and
    // which crashes were already recorded, to log each fault once.
    let mut stalls_recorded: HashSet<(usize, Time)> = HashSet::new();
    let mut crashes_recorded: HashSet<usize> = HashSet::new();

    let obs = &config.obs;
    let metrics = obs.is_active().then(|| EngineMetrics::register(obs));

    // Refuse structurally invalid configurations up front with a clear
    // error instead of panicking mid-run (e.g. an undersized delay matrix).
    if let Err(e) = config.validate() {
        errors.push(format!("invalid configuration: {e}"));
        let run = Run {
            params,
            offsets: config.offsets.clone(),
            ops,
            msgs,
            views,
            last_time,
            events,
            errors,
            delay_violations,
            truncated: true,
            crashed_pending: 0,
            unadmitted: 0,
            msgs_sent,
            bytes_sent,
            faults,
            suspect: Vec::new(),
        };
        return (run, nodes);
    }

    // Seed the heap from the schedule.
    for t in &config.schedule.timed {
        heap.push(Reverse(Entry {
            key: EventKey { time: t.at, class: 2, seq },
            pid: t.pid,
            kind: EventKind::Invoke { inv: t.inv.clone(), source: InvokeSource::Timed },
        }));
        seq += 1;
    }
    for t in &config.schedule.open {
        heap.push(Reverse(Entry {
            key: EventKey { time: t.at, class: 2, seq },
            pid: t.pid,
            kind: EventKind::Invoke { inv: t.inv.clone(), source: InvokeSource::Open },
        }));
        seq += 1;
    }
    for s in &config.schedule.scripts {
        let p = &mut procs[s.pid.0];
        p.script = s.invocations.iter().cloned().collect();
        p.script_gap = s.gap;
        if let Some(first) = p.script.pop_front() {
            heap.push(Reverse(Entry {
                key: EventKey { time: s.start, class: 2, seq },
                pid: s.pid,
                kind: EventKind::Invoke { inv: first, source: InvokeSource::Script },
            }));
            seq += 1;
        }
    }

    while let Some(Reverse(entry)) = heap.pop() {
        let now = entry.key.time;
        if let Some(cap) = config.max_real_time {
            if now > cap {
                break;
            }
        }
        if events >= config.max_events {
            errors.push(format!("event cap {} reached", config.max_events));
            truncated = true;
            break;
        }
        let pid = entry.pid;

        // Fault injection: crashed processes take no further steps; stalled
        // processes defer their events to the end of the stall window.
        if let Some(plan) = &config.faults {
            if let Some(at) = plan.crashed_at(pid) {
                if now >= at {
                    if crashes_recorded.insert(pid.0) {
                        faults.push(InjectedFault::Crashed { pid, at });
                        obs.emit(now.0, Some(pid.0), EventCategory::Crash, || {
                            format!("process crashed at {at}")
                        });
                    }
                    if let Some(m) = &metrics {
                        m.crash_discards.inc();
                    }
                    // An invocation at a crashed process is recorded (the
                    // user observes no response — the run is incomplete),
                    // other events are silently lost with the process.
                    if let EventKind::Invoke { inv, .. } = entry.kind {
                        ops.push(OpRecord {
                            pid,
                            invocation: inv,
                            ret: None,
                            t_invoke: now,
                            t_respond: None,
                        });
                    }
                    continue;
                }
            }
            if let Some(until) = plan.stall_until(pid, now) {
                if stalls_recorded.insert((pid.0, until)) {
                    faults.push(InjectedFault::Stalled { pid, from: now, until });
                    obs.emit(now.0, Some(pid.0), EventCategory::Stall, || {
                        format!("stalled until {until}")
                    });
                }
                if let Some(m) = &metrics {
                    m.stall_deferrals.inc();
                }
                heap.push(Reverse(Entry {
                    key: EventKey { time: until, class: entry.key.class, seq },
                    pid,
                    kind: entry.kind,
                }));
                seq += 1;
                continue;
            }
        }

        // Resolve admission markers into the invocation they admit. The pop
        // happens here, at processing time: if another event claimed the
        // process first (or an epoch barrier started), the queue is left
        // untouched and the next response — or the barrier reopening —
        // schedules a fresh marker.
        let (kind, admitted) = match entry.kind {
            EventKind::AdmitIngress => {
                if procs[pid.0].pending_op.is_some() || draining {
                    continue;
                }
                match procs[pid.0].ingress.pop_front() {
                    None => continue,
                    Some((t_arrive, inv)) => {
                        if let Some(m) = &metrics {
                            m.ingress_wait.observe_i64((now - t_arrive).0);
                        }
                        (EventKind::Invoke { inv, source: InvokeSource::Open }, true)
                    }
                }
            }
            k => (k, false),
        };

        events += 1;
        if let Some(m) = &metrics {
            m.events.inc();
        }
        last_time = last_time.max(now);
        let local = now + config.offsets[pid.0];
        let mut fx: Effects<N::Msg, N::Timer> = Effects::new(pid, n, local);

        let trigger = match kind {
            EventKind::Invoke { inv, source } => {
                if procs[pid.0].pending_op.is_some()
                    || (source == InvokeSource::Open
                        && !admitted
                        && (draining || !procs[pid.0].ingress.is_empty()))
                {
                    if source == InvokeSource::Open {
                        // Open-loop arrival at a busy process, during an
                        // epoch barrier, or behind earlier queued arrivals
                        // (FIFO — it must not jump the queue): queue it; a
                        // response — or the barrier reopening — admits it.
                        procs[pid.0].ingress.push_back((now, inv));
                        if let Some(m) = &metrics {
                            m.ingress_queued.inc();
                            m.ingress_depth.set_max(procs[pid.0].ingress.len() as i64);
                        }
                        continue;
                    }
                    errors.push(format!(
                        "{pid}: invocation {inv:?} at {now} while another operation is pending"
                    ));
                    continue;
                }
                if source == InvokeSource::Open {
                    if let Some(epoch) = config.admission_epoch {
                        epoch_admitted += 1;
                        if epoch_admitted >= epoch {
                            draining = true;
                        }
                    }
                }
                pending_count += 1;
                obs.emit(now.0, Some(pid.0), EventCategory::OpInvoke, || format!("{inv:?}"));
                if let Some(m) = &metrics {
                    m.invocations.inc();
                }
                if let Some(sink) = &config.op_sink {
                    let _ = sink.send(OpEvent::Invoke {
                        pid,
                        t: now,
                        op: inv.op,
                        arg: inv.arg.clone(),
                    });
                }
                procs[pid.0].pending_op = Some((ops.len(), source));
                ops.push(OpRecord {
                    pid,
                    invocation: inv.clone(),
                    ret: None,
                    t_invoke: now,
                    t_respond: None,
                });
                let trig = config.record_views.then(|| StepTrigger::Invoke(format!("{inv:?}")));
                nodes[pid.0].on_invoke(inv, &mut fx);
                trig
            }
            EventKind::Deliver { from, msg } => {
                obs.emit(now.0, Some(pid.0), EventCategory::Recv, || {
                    format!("from {from}: {msg:?}")
                });
                if let Some(m) = &metrics {
                    m.deliveries.inc();
                }
                let trig = config
                    .record_views
                    .then(|| StepTrigger::Deliver { from, msg: format!("{msg:?}") });
                nodes[pid.0].on_deliver(from, msg, &mut fx);
                trig
            }
            // Resolved to an `Invoke` (or skipped) above.
            EventKind::AdmitIngress => unreachable!("admission markers resolve before dispatch"),
            EventKind::Timer { id, tag } => {
                if dead_timers.remove(&id) {
                    continue;
                }
                if let Some(m) = &metrics {
                    m.timer_fires.inc();
                }
                live_tags[pid.0].retain(|(tid, _)| *tid != id);
                let trig = config.record_views.then(|| StepTrigger::Timer(format!("{tag:?}")));
                nodes[pid.0].on_timer(tag, &mut fx);
                trig
            }
        };

        // Apply effects deterministically: cancels, then sends, then timers,
        // then the response.
        for tag in fx.timers_cancelled.drain(..) {
            live_tags[pid.0].retain(|(id, t)| {
                if *t == tag {
                    dead_timers.insert(*id);
                    false
                } else {
                    true
                }
            });
        }
        let sends = fx.sends.len();
        for (to, msg) in fx.sends.drain(..) {
            assert!(to.0 < n, "send to unknown process {to}");
            assert_ne!(to, pid, "processes do not message themselves");
            let k = {
                let c = &mut msg_counters[pid.0 * n + to.0];
                let v = *c;
                *c += 1;
                v
            };
            // Communication cost is charged at the send: the protocol paid
            // for the message whether or not the network later drops it
            // (fault-injected duplicates are the network's doing, not cost).
            let wire_bytes = N::msg_wire_bytes(&msg) as u64;
            msgs_sent += 1;
            bytes_sent += wire_bytes;
            if let Some(m) = &metrics {
                m.msg_bytes.add(wire_bytes);
            }
            let mut delay = config.delay.delay(params, pid, to, k);
            if let Some(plan) = &config.faults {
                if let Some(override_delay) = plan.delay_override(pid, to, k) {
                    delay = override_delay;
                    faults.push(InjectedFault::DelayOverridden { from: pid, to, k, delay });
                    obs.emit(now.0, Some(pid.0), EventCategory::DelayOverride, || {
                        format!("to {to} k={k}: delay forced to {delay}")
                    });
                    if let Some(m) = &metrics {
                        m.delay_overrides.inc();
                    }
                }
                if plan.should_drop(pid, to, k) {
                    faults.push(InjectedFault::Dropped { from: pid, to, k, t_send: now });
                    obs.emit(now.0, Some(pid.0), EventCategory::Drop, || {
                        format!("to {to} k={k} dropped in flight")
                    });
                    if let Some(m) = &metrics {
                        m.drops.inc();
                    }
                    if config.record_messages {
                        msgs.push(MsgRecord { from: pid, to, t_send: now, t_recv: None });
                    }
                    continue;
                }
            }
            assert!(delay >= Time::ZERO, "negative message delay {delay:?}");
            if !params.delay_ok(delay) {
                delay_violations += 1;
            }
            let t_recv = now + delay;
            obs.emit(now.0, Some(pid.0), EventCategory::Send, || {
                format!("to {to} k={k} delay={delay}")
            });
            if let Some(m) = &metrics {
                m.sends.inc();
                m.delay_draw.observe_i64(delay.0);
            }
            let deliverable = config.max_real_time.is_none_or(|cap| t_recv <= cap);
            if config.record_messages {
                msgs.push(MsgRecord {
                    from: pid,
                    to,
                    t_send: now,
                    t_recv: deliverable.then_some(t_recv),
                });
            }
            if let Some(plan) = &config.faults {
                if plan.should_duplicate(pid, to, k) {
                    let extra_delay = plan.duplicate_delay(params, pid, to, k);
                    let t_extra = now + extra_delay;
                    faults.push(InjectedFault::Duplicated { from: pid, to, k, t_extra });
                    obs.emit(now.0, Some(pid.0), EventCategory::Duplicate, || {
                        format!("to {to} k={k}: second copy arrives at {t_extra}")
                    });
                    if let Some(m) = &metrics {
                        m.duplicates.inc();
                    }
                    if config.record_messages {
                        let dup_deliverable = config.max_real_time.is_none_or(|cap| t_extra <= cap);
                        msgs.push(MsgRecord {
                            from: pid,
                            to,
                            t_send: now,
                            t_recv: dup_deliverable.then_some(t_extra),
                        });
                    }
                    heap.push(Reverse(Entry {
                        key: EventKey { time: t_extra, class: 0, seq },
                        pid: to,
                        kind: EventKind::Deliver { from: pid, msg: msg.clone() },
                    }));
                    seq += 1;
                }
            }
            heap.push(Reverse(Entry {
                key: EventKey { time: t_recv, class: 0, seq },
                pid: to,
                kind: EventKind::Deliver { from: pid, msg },
            }));
            seq += 1;
        }
        for (local_fire, tag) in fx.timers_set.drain(..) {
            let real_fire = local_fire - config.offsets[pid.0];
            let id = next_timer_id;
            next_timer_id += 1;
            live_tags[pid.0].push((id, tag.clone()));
            heap.push(Reverse(Entry {
                key: EventKey { time: real_fire, class: 1, seq },
                pid,
                kind: EventKind::Timer { id, tag },
            }));
            seq += 1;
        }
        let response = fx.response.take();
        if config.record_views {
            if let Some(trigger) = trigger {
                views[pid.0].push(ViewStep {
                    local_time: local,
                    trigger,
                    sends,
                    response: response.as_ref().map(|v| format!("{v:?}")),
                });
            }
        }
        if let Some(ret) = response {
            match procs[pid.0].pending_op.take() {
                Some((op_idx, source)) => {
                    obs.emit(now.0, Some(pid.0), EventCategory::OpRespond, || {
                        format!(
                            "{:?} -> {ret:?} (latency {})",
                            ops[op_idx].invocation,
                            now - ops[op_idx].t_invoke
                        )
                    });
                    if let Some(m) = &metrics {
                        m.responses.inc();
                        m.op_latency.observe_i64((now - ops[op_idx].t_invoke).0);
                    }
                    if let Some(sink) = &config.op_sink {
                        let _ = sink.send(OpEvent::Respond { pid, t: now, ret: ret.clone() });
                    }
                    ops[op_idx].ret = Some(ret);
                    ops[op_idx].t_respond = Some(now);
                    // Closed-loop: a *scripted* response schedules the next
                    // scripted invocation.
                    if source == InvokeSource::Script {
                        if let Some(next_inv) = procs[pid.0].script.pop_front() {
                            let at = now + procs[pid.0].script_gap;
                            heap.push(Reverse(Entry {
                                key: EventKey { time: at, class: 2, seq },
                                pid,
                                kind: EventKind::Invoke {
                                    inv: next_inv,
                                    source: InvokeSource::Script,
                                },
                            }));
                            seq += 1;
                        }
                    }
                    pending_count = pending_count.saturating_sub(1);
                    if !draining {
                        // Open-loop: the process is idle again; admit the
                        // oldest queued arrival (same instant, invocation
                        // event class — the marker pops it at processing
                        // time, after any same-instant arrivals queue up).
                        if !procs[pid.0].ingress.is_empty() {
                            heap.push(Reverse(Entry {
                                key: EventKey { time: now, class: 2, seq },
                                pid,
                                kind: EventKind::AdmitIngress,
                            }));
                            seq += 1;
                        }
                    } else if pending_count == 0 {
                        // Epoch barrier: every pending operation has
                        // responded, so `now` ends a quiescent epoch. Reopen
                        // one tick later — strictly after every response of
                        // the finished epoch, so a streaming checker sees a
                        // settled cut — admitting one queued arrival per
                        // process (their responses admit the rest).
                        draining = false;
                        epoch_admitted = 0;
                        let reopen = now + Time(1);
                        if let Some(m) = &metrics {
                            m.ingress_epochs.inc();
                        }
                        for (i, proc) in procs.iter().enumerate().take(n) {
                            if !proc.ingress.is_empty() {
                                heap.push(Reverse(Entry {
                                    key: EventKey { time: reopen, class: 2, seq },
                                    pid: Pid(i),
                                    kind: EventKind::AdmitIngress,
                                }));
                                seq += 1;
                            }
                        }
                    }
                }
                None => {
                    errors.push(format!("{pid}: response {ret:?} at {now} with no pending op"));
                }
            }
        }
    }

    // Crash honesty accounting: make every crash that took effect during the
    // run visible in `faults` (even if no event of the crashed process ever
    // needed discarding), and count the pending operations attributable to a
    // crash of their invoking process.
    let mut crashed_pending: u64 = 0;
    if let Some(plan) = &config.faults {
        for i in 0..n {
            let Some(at) = plan.crashed_at(Pid(i)) else { continue };
            if !crashes_recorded.contains(&i) && at > last_time {
                continue; // the run never reached the crash time
            }
            if crashes_recorded.insert(i) {
                faults.push(InjectedFault::Crashed { pid: Pid(i), at });
            }
            crashed_pending +=
                ops.iter().filter(|o| o.pid == Pid(i) && o.ret.is_none()).count() as u64;
        }
    }

    // Arrivals that never got admitted (the run ended — cap, truncation, or
    // a response that never came — while they sat in an ingress queue).
    let unadmitted: u64 = procs.iter().map(|p| p.ingress.len() as u64).sum();

    let run = Run {
        params,
        offsets: config.offsets.clone(),
        ops,
        msgs,
        views,
        last_time,
        events,
        errors,
        delay_violations,
        truncated,
        crashed_pending,
        unadmitted,
        msgs_sent,
        bytes_sent,
        faults,
        suspect: Vec::new(),
    };
    (run, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::value::Value;

    /// Echo node: responds to any invocation after a fixed local delay,
    /// optionally pinging all peers first.
    struct EchoNode {
        wait: Time,
        ping_peers: bool,
    }

    #[derive(Clone, PartialEq, Debug)]
    struct RespondTimer(Invocation);

    impl Node for EchoNode {
        type Msg = u32;
        type Timer = RespondTimer;

        fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<u32, RespondTimer>) {
            if self.ping_peers {
                fx.broadcast(7);
            }
            fx.set_timer(self.wait, RespondTimer(inv));
        }

        fn on_deliver(&mut self, _from: Pid, _msg: u32, _fx: &mut Effects<u32, RespondTimer>) {}

        fn on_timer(&mut self, t: RespondTimer, fx: &mut Effects<u32, RespondTimer>) {
            fx.respond(t.0.arg.clone());
        }
    }

    fn config() -> SimConfig {
        SimConfig::new(ModelParams::default_experiment(), DelaySpec::AllMax)
    }

    #[test]
    fn echo_round_trip() {
        let cfg = config().with_schedule(Schedule::new().at(
            Pid(0),
            Time(100),
            Invocation::new("echo", 5),
        ));
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(run.complete());
        assert_eq!(run.ops.len(), 1);
        assert_eq!(run.ops[0].ret, Some(Value::Int(5)));
        assert_eq!(run.ops[0].latency(), Some(Time(50)));
        assert!(run.errors.is_empty());
    }

    #[test]
    fn messages_are_delivered_with_spec_delay() {
        let cfg = SimConfig { record_messages: true, ..config() }
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::nullary("go")));
        let run = simulate(&cfg, |_| EchoNode { wait: Time(1), ping_peers: true });
        assert_eq!(run.msgs.len(), 3);
        for m in &run.msgs {
            assert_eq!(m.delay(), Some(run.params.d));
        }
        assert!(run.is_admissible());
    }

    #[test]
    fn closed_loop_script_runs_sequentially() {
        let invs = vec![Invocation::new("a", 1), Invocation::new("b", 2), Invocation::new("c", 3)];
        let cfg = config().with_schedule(Schedule::new().script(crate::schedule::Script {
            pid: Pid(2),
            start: Time(10),
            gap: Time(5),
            invocations: invs,
        }));
        let run = simulate(&cfg, |_| EchoNode { wait: Time(20), ping_peers: false });
        assert_eq!(run.ops.len(), 3);
        assert_eq!(run.ops[0].t_invoke, Time(10));
        assert_eq!(run.ops[0].t_respond, Some(Time(30)));
        assert_eq!(run.ops[1].t_invoke, Time(35)); // 30 + gap 5
        assert_eq!(run.ops[2].t_invoke, Time(60));
        assert!(run.complete());
    }

    #[test]
    fn overlapping_invocations_are_rejected() {
        let cfg = config().with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::nullary("x")).at(
                Pid(0),
                Time(1),
                Invocation::nullary("y"),
            ), // overlaps (wait=50)
        );
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert_eq!(run.ops.len(), 1);
        assert_eq!(run.errors.len(), 1);
        assert!(run.errors[0].contains("pending"));
    }

    #[test]
    fn open_arrivals_queue_instead_of_erroring() {
        // Three arrivals at p0 within one service time (wait = 50): the
        // second and third queue and are served back-to-back, FIFO.
        let cfg = config().with_schedule(
            Schedule::new()
                .arrival(Pid(0), Time(0), Invocation::new("echo", 1))
                .arrival(Pid(0), Time(1), Invocation::new("echo", 2))
                .arrival(Pid(0), Time(2), Invocation::new("echo", 3)),
        );
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        assert!(run.complete());
        assert_eq!(run.ops.len(), 3);
        assert_eq!(run.unadmitted, 0);
        // FIFO admission: values in arrival order.
        let rets: Vec<_> = run.ops.iter().map(|o| o.ret.clone().unwrap()).collect();
        assert_eq!(rets, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        // Admission happens at the previous response instant.
        assert_eq!(run.ops[0].t_invoke, Time(0));
        assert_eq!(run.ops[1].t_invoke, Time(50));
        assert_eq!(run.ops[2].t_invoke, Time(100));
    }

    #[test]
    fn open_arrivals_left_queued_are_counted() {
        // The run is cut at t = 60: the third arrival is admitted at 50 but
        // cannot respond by 60... actually it responds at 100 > cap, so it
        // stays pending; the fourth never leaves the ingress queue.
        let cfg = SimConfig { max_real_time: Some(Time(60)), ..config() }.with_schedule(
            Schedule::new()
                .arrival(Pid(0), Time(0), Invocation::new("echo", 1))
                .arrival(Pid(0), Time(1), Invocation::new("echo", 2))
                .arrival(Pid(0), Time(2), Invocation::new("echo", 3)),
        );
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        assert_eq!(run.ops.len(), 2, "second op admitted at 50, third still queued");
        assert_eq!(run.unadmitted, 1);
    }

    #[test]
    fn open_arrivals_report_ingress_metrics() {
        let (obs, _ring) = Obs::ring(64);
        let cfg = config()
            .with_schedule(
                Schedule::new().arrival(Pid(0), Time(0), Invocation::new("echo", 1)).arrival(
                    Pid(0),
                    Time(10),
                    Invocation::new("echo", 2),
                ),
            )
            .with_obs(obs.clone());
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(run.complete());
        assert_eq!(obs.metrics.counter("sim.ingress.queued").get(), 1);
        assert_eq!(obs.metrics.gauge("sim.ingress.depth").get(), 1);
        let wait = obs
            .metrics
            .histogram("sim.ingress.wait_ticks", &[6000, 24000, 96000, 384000, 1_536_000])
            .snapshot();
        assert_eq!(wait.count(), 1);
        // Arrived at 10, admitted at the response instant 50.
        assert_eq!(wait.mean(), Some(40.0));
    }

    #[test]
    fn same_instant_arrival_must_not_jump_the_ingress_queue() {
        // The third arrival lands at exactly the instant the first response
        // admits the queued second one. Schedule events carry setup-time
        // sequence numbers, so the fresh arrival sorts *before* the admission
        // event — if admission popped the queue when the response fired (not
        // when the admission event is processed), the popped op would be
        // re-queued behind the newcomer and per-process FIFO would break.
        let cfg = config().with_schedule(
            Schedule::new()
                .arrival(Pid(0), Time(0), Invocation::new("echo", 1))
                .arrival(Pid(0), Time(1), Invocation::new("echo", 2))
                .arrival(Pid(0), Time(50), Invocation::new("echo", 3)),
        );
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(run.complete(), "{run}");
        let rets: Vec<_> = run.ops.iter().map(|o| o.ret.clone().unwrap()).collect();
        assert_eq!(rets, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(run.ops[1].t_invoke, Time(50));
        assert_eq!(run.ops[2].t_invoke, Time(100));
    }

    #[test]
    fn admission_epochs_insert_quiescent_barriers() {
        // Epoch = 2: after every second admission the engine holds new
        // admissions until all pending operations respond, then reopens one
        // tick later. Four back-to-back arrivals at one process serve as
        // 0–50 and 101–151 epochs with a settled cut at 100/101.
        let (obs, _ring) = Obs::ring(64);
        let mut sched = Schedule::new();
        for i in 1..=4 {
            sched = sched.arrival(Pid(0), Time(0), Invocation::new("echo", i));
        }
        let cfg = config().with_schedule(sched).with_admission_epoch(2).with_obs(obs.clone());
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        let invokes: Vec<_> = run.ops.iter().map(|o| o.t_invoke).collect();
        // Ops 1–2 run back to back; the barrier then holds op 3 until one
        // tick after op 2's response (a strictly-later reopen, so an online
        // checker sees a settled cut), and ops 3–4 form the second epoch.
        assert_eq!(invokes, vec![Time(0), Time(50), Time(101), Time(151)]);
        let rets: Vec<_> = run.ops.iter().map(|o| o.ret.clone().unwrap()).collect();
        assert_eq!(rets, (1..=4).map(Value::Int).collect::<Vec<_>>());
        assert_eq!(obs.metrics.counter("sim.ingress.epochs").get(), 2);
    }

    #[test]
    fn determinism_identical_reruns() {
        let cfg = SimConfig { record_messages: true, record_views: true, ..config() }
            .with_schedule(
                Schedule::new()
                    .at(Pid(0), Time(0), Invocation::new("echo", 1))
                    .at(Pid(1), Time(0), Invocation::new("echo", 2))
                    .at(Pid(2), Time(3), Invocation::new("echo", 3)),
            );
        let r1 = simulate(&cfg, |_| EchoNode { wait: Time(9), ping_peers: true });
        let r2 = simulate(&cfg, |_| EchoNode { wait: Time(9), ping_peers: true });
        assert_eq!(r1.ops, r2.ops);
        assert_eq!(r1.msgs, r2.msgs);
        assert!(r1.views_equal(&r2));
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn max_real_time_stops_the_run() {
        let cfg = SimConfig { max_real_time: Some(Time(25)), ..config() }.with_schedule(
            Schedule::new().script(crate::schedule::Script {
                pid: Pid(0),
                start: Time(0),
                gap: Time(0),
                invocations: vec![Invocation::nullary("x"); 100],
            }),
        );
        let run = simulate(&cfg, |_| EchoNode { wait: Time(10), ping_peers: false });
        // Only ops fully inside [0, 25] complete: invocations at 0, 10, 20.
        assert!(run.ops.len() <= 3);
        assert!(run.last_time <= Time(25));
    }

    /// Node that sets a timer then cancels it upon a message.
    struct CancelNode;
    impl Node for CancelNode {
        type Msg = ();
        type Timer = u8;
        fn on_invoke(&mut self, _inv: Invocation, fx: &mut Effects<(), u8>) {
            fx.set_timer(Time(100), 1); // would respond late
            fx.send(Pid(1), ());
        }
        fn on_deliver(&mut self, _from: Pid, _msg: (), fx: &mut Effects<(), u8>) {
            // p1 echoes back; p0 cancels the slow timer and responds fast.
            if fx.pid() == Pid(1) {
                fx.send(Pid(0), ());
            } else {
                fx.cancel_timer(1);
                fx.respond(Value::Int(99));
            }
        }
        fn on_timer(&mut self, _t: u8, fx: &mut Effects<(), u8>) {
            fx.respond(Value::Int(-1));
        }
    }

    #[test]
    fn timer_cancellation_prevents_firing() {
        let params = ModelParams::new(2, Time(30), Time(10), Time(5));
        let cfg = SimConfig::new(params, DelaySpec::AllMin).with_schedule(Schedule::new().at(
            Pid(0),
            Time(0),
            Invocation::nullary("x"),
        ));
        let run = simulate(&cfg, |_| CancelNode);
        assert!(run.complete());
        // Round trip of 2 × (d-u) = 40 < timer 100, so cancel wins.
        assert_eq!(run.ops[0].ret, Some(Value::Int(99)));
        assert_eq!(run.ops[0].latency(), Some(Time(40)));
        assert!(run.errors.is_empty());
    }

    #[test]
    fn event_ordering_delivers_before_timers() {
        // A deliver and a timer scheduled for the same instant: deliver wins,
        // so the CancelNode cancels its timer exactly at the tie.
        let params = ModelParams::new(2, Time(50), Time(10), Time(5));
        let cfg = SimConfig::new(params, DelaySpec::AllMax).with_schedule(Schedule::new().at(
            Pid(0),
            Time(0),
            Invocation::nullary("x"),
        ));
        // Round trip = 100 = timer fire time.
        let run = simulate(&cfg, |_| CancelNode);
        assert_eq!(run.ops[0].ret, Some(Value::Int(99)));
    }

    #[test]
    fn shifted_config_follows_theorem_1() {
        let cfg = config();
        let x = vec![Time(100), Time(-100), Time(0), Time(0)];
        let shifted = cfg.shifted(&x);
        assert_eq!(shifted.offsets[0], Time(-100));
        assert_eq!(shifted.offsets[1], Time(100));
        let m = shifted.delay.as_matrix().unwrap();
        // d' = d - x_0 + x_1 = 6000 - 100 - 100.
        assert_eq!(m[0][1], Time(5800));
        assert_eq!(m[1][0], Time(6200));
        assert_eq!(m[2][3], Time(6000));
    }

    #[test]
    fn crash_during_inflight_op_counts_as_crashed_pending() {
        use crate::faults::FaultPlan;
        // p0 invokes at t=0 and would respond at t=50 via timer; the crash at
        // t=10 discards the response. p1's identical op is unaffected. The
        // pending op must be attributed to the crash in the honesty flags.
        let plan = FaultPlan::new(1).crash(Pid(0), Time(10));
        let cfg = config()
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("echo", 5)).at(
                Pid(1),
                Time(0),
                Invocation::new("echo", 6),
            ))
            .with_faults(plan);
        let run = simulate(&cfg, |_| EchoNode { wait: Time(50), ping_peers: false });
        assert!(!run.complete());
        assert_eq!(run.pending().count(), 1);
        assert_eq!(run.crashed_pending, 1);
        assert!(
            run.faults
                .iter()
                .any(|f| matches!(f, InjectedFault::Crashed { pid: Pid(0), at: Time(10) })),
            "crash must be recorded even though only a timer was discarded: {:?}",
            run.faults
        );
    }

    #[test]
    fn send_accounting_counts_messages_and_bytes() {
        let cfg =
            config().with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("echo", 1)));
        let (obs, _ring) = Obs::ring(64);
        let run =
            simulate(&cfg.with_obs(obs.clone()), |_| EchoNode { wait: Time(1), ping_peers: true });
        // One broadcast to 3 peers; Msg = u32 → 4 bytes each by default.
        assert_eq!(run.msgs_sent, 3);
        assert_eq!(run.bytes_sent, 12);
        assert_eq!(obs.metrics.counter("sim.msg.bytes").get(), 12);
        assert_eq!(run.msgs_per_completed_op(), Some(3.0));
    }

    #[test]
    fn observed_run_traces_events_and_counts_metrics() {
        use crate::faults::FaultPlan;
        use lintime_obs::Obs;
        let (obs, ring) = Obs::ring(4096);
        let plan = FaultPlan::new(7).drop_exact(Pid(0), Pid(1), 0).crash(Pid(3), Time(1));
        let cfg = config()
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("echo", 1)).at(
                Pid(3),
                Time(10),
                Invocation::new("echo", 2),
            ))
            .with_faults(plan)
            .with_obs(obs.clone());
        let run = simulate(&cfg, |_| EchoNode { wait: Time(9), ping_peers: true });
        let cats: std::collections::HashSet<_> = ring.events().iter().map(|e| e.category).collect();
        for want in [
            lintime_obs::EventCategory::OpInvoke,
            lintime_obs::EventCategory::Send,
            lintime_obs::EventCategory::Recv,
            lintime_obs::EventCategory::Drop,
            lintime_obs::EventCategory::Crash,
            lintime_obs::EventCategory::OpRespond,
        ] {
            assert!(cats.contains(&want), "missing {want} in {cats:?}");
        }
        let m = &obs.metrics;
        assert_eq!(m.counter("sim.events").get(), run.events);
        assert_eq!(m.counter("sim.fault.drops").get(), 1);
        assert_eq!(m.counter("sim.op.responses").get(), 1, "p3 crashed before responding");
        assert_eq!(
            m.histogram("sim.op.latency_ticks", &[1500, 3000, 6000, 12000, 24000, 48000])
                .snapshot()
                .count(),
            1
        );
    }

    #[test]
    fn observability_does_not_perturb_the_run() {
        let cfg = config().with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("echo", 1)).at(
                Pid(1),
                Time(3),
                Invocation::new("echo", 2),
            ),
        );
        let bare = simulate(&cfg, |_| EchoNode { wait: Time(9), ping_peers: true });
        let (obs, _ring) = lintime_obs::Obs::ring(1024);
        let observed =
            simulate(&cfg.with_obs(obs), |_| EchoNode { wait: Time(9), ping_peers: true });
        assert_eq!(bare.ops, observed.ops);
        assert_eq!(bare.events, observed.events);
    }

    #[test]
    fn inadmissible_config_detected() {
        let mut cfg = config();
        assert!(cfg.admissible().is_ok());
        cfg.offsets[0] = Time(99999);
        assert!(cfg.admissible().is_err());
        let bad_delay =
            SimConfig::new(ModelParams::default_experiment(), DelaySpec::Constant(Time(1)));
        assert!(bad_delay.admissible().is_err());
    }
}
