//! # lintime-sim
//!
//! A deterministic discrete-event simulation of the partially synchronous
//! message-passing model of Wang, Talmage, Lee, Welch (IPPS 2014), Section
//! 2.2: `n` reliable processes with drift-free clocks synchronized to within
//! `ε`, exchanging point-to-point messages whose delays fall in `[d - u, d]`.
//!
//! * [`time`] — integer virtual time and the model parameters `(n, d, u, ε)`;
//! * [`node`] — the event-triggered process interface ([`node::Node`]) and
//!   effect sink ([`node::Effects`]);
//! * [`delay`] — deterministic message-delay models, including the pair-wise
//!   uniform matrices used by the lower-bound constructions;
//! * [`schedule`] — open-loop (timed) and closed-loop (scripted) invocation
//!   schedules, including the paper's `R_A(ρ, C, D)` prefix;
//! * [`workload`] — declarative workload mixes materialized into schedules;
//! * [`faults`] — deterministic, seedable fault injection
//!   ([`faults::FaultPlan`]): message drops/duplicates/delay overrides, node
//!   crashes, and stall windows, threaded through the engine;
//! * [`rng`] — a vendored SplitMix64 generator (no external dependencies);
//! * [`engine`] — the simulator: [`engine::simulate`] turns a
//!   [`engine::SimConfig`] plus a node factory into a recorded [`run::Run`];
//! * [`run`] — recorded runs: operation/message records, timed views,
//!   admissibility, and record-level shifting (Theorem 1);
//! * [`fragment`] — run fragments, the `chop` operator, and appendability
//!   (Section 4.1, Lemma 2).
//!
//! ## The shifting technique, executably
//!
//! `shift(R, x̄)` exists at two levels, and the test-suite checks they agree:
//!
//! 1. **Configuration level** — [`engine::SimConfig::shifted`] transforms
//!    `(C, D, schedule)` per Theorem 1 and *re-executes*; because processes
//!    cannot observe real time, the re-executed run has identical views.
//! 2. **Record level** — [`run::Run::shifted`] moves the recorded timestamps
//!    directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delay;
pub mod engine;
pub mod faults;
pub mod fragment;
pub mod node;
pub mod rng;
pub mod run;
pub mod schedule;
pub mod time;
pub mod workload;

/// Convenient re-exports of the most-used items.
pub mod prelude {
    pub use crate::delay::DelaySpec;
    pub use crate::engine::{simulate, simulate_full, OpEvent, SimConfig};
    pub use crate::faults::{FaultPlan, InjectedFault, StallWindow};
    pub use crate::fragment::{apply_cuts, chop, shortest_paths, Fragment};
    pub use crate::node::{EffectParts, Effects, Node};
    pub use crate::rng::SplitMix64;
    pub use crate::run::{CrashedPendingByClass, MsgRecord, OpRecord, Run, StepTrigger, ViewStep};
    pub use crate::schedule::{Schedule, Script, TimedInvocation};
    pub use crate::time::{ModelParams, Pid, Time};
    pub use crate::workload::{Mix, Workload};
}
