//! Virtual time and the model parameters `(n, d, u, ε)`.
//!
//! The paper works with real-numbered time. We use integer *ticks* (one tick
//! ≈ 1 µs of model time) so that all arithmetic in the bound formulas and the
//! shifting constructions is exact. Choose `d` and `u` divisible by 12·n when
//! configuring experiments so quantities like `u/4`, `d/3`, and `(1 - 1/n)u`
//! are integral; [`ModelParams::exact`] checks this.
//!
//! Times may be negative: shifting moves events backwards, and the paper's
//! canonical run `R_A(ρ, C, D)` starts at *clock* time 0, i.e. real time
//! `-c_0`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in time or a duration, in integer ticks (1 tick ≈ 1 µs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub i64);

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time.
    pub const MAX: Time = Time(i64::MAX);
    /// The minimum representable time.
    pub const MIN: Time = Time(i64::MIN);

    /// Construct from raw ticks.
    pub const fn ticks(t: i64) -> Time {
        Time(t)
    }

    /// Raw tick count.
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// Absolute value.
    pub fn abs(self) -> Time {
        Time(self.0.abs())
    }

    /// Maximum of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Minimum of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Saturating subtraction clamped at zero (useful for "wait until").
    pub fn saturating_sub_zero(self, other: Time) -> Time {
        Time((self.0 - other.0).max(0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Process identifier `p_i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub usize);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The system model parameters of Section 2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelParams {
    /// Number of processes `n ≥ 2`.
    pub n: usize,
    /// Maximum message delay `d > 0`.
    pub d: Time,
    /// Delay uncertainty `u ∈ (0, d]`; delays fall in `[d - u, d]`.
    pub u: Time,
    /// Clock-skew bound `ε ≥ 0`: `|c_i - c_j| ≤ ε`.
    pub epsilon: Time,
}

impl ModelParams {
    /// Construct and validate parameters. Panics on nonsensical values.
    pub fn new(n: usize, d: Time, u: Time, epsilon: Time) -> Self {
        assert!(n >= 2, "need at least two processes");
        assert!(d > Time::ZERO, "d must be positive");
        assert!(u > Time::ZERO && u <= d, "u must be in (0, d]");
        assert!(epsilon >= Time::ZERO, "epsilon must be non-negative");
        ModelParams { n, d, u, epsilon }
    }

    /// Parameters with the *optimal* clock skew `ε = (1 - 1/n)u` from \[16\]
    /// (Lundelius–Lynch), as assumed in Section 5.
    pub fn with_optimal_epsilon(n: usize, d: Time, u: Time) -> Self {
        let eps = Self::optimal_epsilon(n, u);
        Self::new(n, d, u, eps)
    }

    /// The optimal skew `(1 - 1/n)u = u - u/n`.
    pub fn optimal_epsilon(n: usize, u: Time) -> Time {
        u - u / (n as i64)
    }

    /// The default experiment parameters used throughout the benchmark
    /// harness: `n = 4`, `d = 6000`, `u = 2400`, `ε = (1 - 1/4)·2400 = 1800`.
    /// All divisions appearing in the paper's bounds are exact for these.
    pub fn default_experiment() -> Self {
        Self::with_optimal_epsilon(4, Time(6000), Time(2400))
    }

    /// Minimum message delay `d - u`.
    pub fn min_delay(self) -> Time {
        self.d - self.u
    }

    /// `min{ε, u, d/3}` — the `m` of Theorems 4 and 5.
    pub fn m(self) -> Time {
        self.epsilon.min(self.u).min(self.d / 3)
    }

    /// True iff a delay value is admissible: `δ ∈ [d - u, d]`.
    pub fn delay_ok(self, delay: Time) -> bool {
        delay >= self.min_delay() && delay <= self.d
    }

    /// Check that the divisions used by the bound formulas and the shifting
    /// constructions are exact for these parameters (recommended for
    /// experiments so measured values match formulas exactly).
    pub fn exact(self) -> bool {
        let n = self.n as i64;
        self.u.0 % 4 == 0 && self.u.0 % (2 * n) == 0 && self.d.0 % 3 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Time(10);
        let b = Time(3);
        assert_eq!(a + b, Time(13));
        assert_eq!(a - b, Time(7));
        assert_eq!(-a, Time(-10));
        assert_eq!(a * 2, Time(20));
        assert_eq!(a / 2, Time(5));
        assert_eq!(Time(-4).abs(), Time(4));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub_zero(a), Time::ZERO);
        let total: Time = [a, b].into_iter().sum();
        assert_eq!(total, Time(13));
    }

    #[test]
    fn default_experiment_params_are_exact() {
        let p = ModelParams::default_experiment();
        assert_eq!(p.n, 4);
        assert_eq!(p.epsilon, Time(1800));
        assert_eq!(p.min_delay(), Time(3600));
        assert_eq!(p.m(), Time(1800)); // min{1800, 2400, 2000}
        assert!(p.exact());
    }

    #[test]
    fn optimal_epsilon_formula() {
        assert_eq!(ModelParams::optimal_epsilon(4, Time(2400)), Time(1800));
        assert_eq!(ModelParams::optimal_epsilon(2, Time(100)), Time(50));
        assert_eq!(ModelParams::optimal_epsilon(3, Time(900)), Time(600));
    }

    #[test]
    fn delay_ok_bounds() {
        let p = ModelParams::default_experiment();
        assert!(p.delay_ok(Time(3600)));
        assert!(p.delay_ok(Time(6000)));
        assert!(!p.delay_ok(Time(3599)));
        assert!(!p.delay_ok(Time(6001)));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_process() {
        let _ = ModelParams::new(1, Time(100), Time(10), Time(1));
    }

    #[test]
    #[should_panic(expected = "u must be")]
    fn rejects_u_larger_than_d() {
        let _ = ModelParams::new(2, Time(100), Time(200), Time(1));
    }

    #[test]
    fn m_picks_d_over_3_when_smallest() {
        let p = ModelParams::new(3, Time(300), Time(300), Time(300));
        assert_eq!(p.m(), Time(100));
    }
}
