//! Reusable workload generators: turn a declarative mix specification into a
//! [`Schedule`], deterministically from a seed. Used by the benchmark
//! harness, the examples, and randomized correctness sweeps.

use crate::rng::SplitMix64;
use crate::schedule::Schedule;
use crate::time::{ModelParams, Pid, Time};
use lintime_adt::spec::{Invocation, ObjectSpec, OpClass};

/// Relative operation-class weights of a workload mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Weight of pure accessors.
    pub accessors: u32,
    /// Weight of pure mutators.
    pub mutators: u32,
    /// Weight of mixed operations.
    pub mixed: u32,
}

impl Mix {
    /// Mostly reads: 80 / 15 / 5.
    pub const READ_HEAVY: Mix = Mix { accessors: 80, mutators: 15, mixed: 5 };
    /// Mostly writes: 15 / 80 / 5.
    pub const WRITE_HEAVY: Mix = Mix { accessors: 15, mutators: 80, mixed: 5 };
    /// Balanced thirds.
    pub const BALANCED: Mix = Mix { accessors: 34, mutators: 33, mixed: 33 };

    fn total(&self) -> u32 {
        self.accessors + self.mutators + self.mixed
    }

    fn pick(&self, roll: u32) -> OpClass {
        if roll < self.accessors {
            OpClass::PureAccessor
        } else if roll < self.accessors + self.mutators {
            OpClass::PureMutator
        } else {
            OpClass::Mixed
        }
    }
}

/// A declarative workload: `ops_per_process` operations per process, drawn
/// from `mix`, with inter-invocation gaps uniform in `[0, max_gap]` after
/// each response (closed-loop per process via timed, non-overlapping
/// invocations).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Operation-class mix.
    pub mix: Mix,
    /// Operations issued by each process.
    pub ops_per_process: usize,
    /// Maximum extra gap between a response deadline and the next invocation.
    pub max_gap: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// A balanced default: 6 ops per process, gaps up to `2d`.
    pub fn balanced(params: ModelParams, seed: u64) -> Workload {
        Workload { mix: Mix::BALANCED, ops_per_process: 6, max_gap: params.d * 2, seed }
    }

    /// Materialize into a schedule for `spec`. Invocations at each process
    /// are spaced at least `d + u + ε + 1` apart (an upper bound on any
    /// Algorithm-1 or folklore response time), so the one-pending-op user
    /// constraint holds for every algorithm under test.
    ///
    /// If the type lacks an operation of a drawn class, the draw falls back
    /// to any operation (every type has at least one accessor and mutator).
    pub fn schedule(&self, params: ModelParams, spec: &dyn ObjectSpec) -> Schedule {
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut schedule = Schedule::new();
        // Worst-case completion for WTLW and both folklore baselines.
        let op_budget = (params.d + params.u + params.epsilon).max(params.d * 2) + Time(1);
        let metas = spec.ops();
        for pid in 0..params.n {
            let mut at = Time(rng.gen_range(0..=self.max_gap.as_ticks().max(1)));
            for _ in 0..self.ops_per_process {
                let class = self.mix.pick(rng.gen_range(0..self.mix.total()));
                let candidates: Vec<_> = metas.iter().filter(|m| m.class == class).collect();
                let meta = if candidates.is_empty() {
                    &metas[rng.gen_range(0..metas.len())]
                } else {
                    candidates[rng.gen_range(0..candidates.len())]
                };
                let args = spec.suggested_args(meta.name);
                let arg = args[rng.gen_range(0..args.len())].clone();
                schedule = schedule.at(Pid(pid), at, Invocation::new(meta.name, arg));
                at += op_budget + Time(rng.gen_range(0..=self.max_gap.as_ticks().max(1)));
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::{FifoQueue, GrowSet};

    fn p() -> ModelParams {
        ModelParams::default_experiment()
    }

    #[test]
    fn generates_requested_volume() {
        let spec = erase(FifoQueue::new());
        let w = Workload { mix: Mix::BALANCED, ops_per_process: 5, max_gap: Time(100), seed: 1 };
        let s = w.schedule(p(), spec.as_ref());
        assert_eq!(s.len(), 5 * p().n);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = erase(FifoQueue::new());
        let w = Workload::balanced(p(), 7);
        assert_eq!(w.schedule(p(), spec.as_ref()), w.schedule(p(), spec.as_ref()));
        let w2 = Workload { seed: 8, ..w };
        assert_ne!(w.schedule(p(), spec.as_ref()), w2.schedule(p(), spec.as_ref()));
    }

    #[test]
    fn read_heavy_mostly_reads() {
        let spec = erase(FifoQueue::new());
        let w = Workload { mix: Mix::READ_HEAVY, ops_per_process: 50, max_gap: Time(10), seed: 3 };
        let s = w.schedule(p(), spec.as_ref());
        let peeks = s.timed.iter().filter(|t| t.inv.op == "peek").count();
        assert!(peeks * 2 > s.len(), "{peeks} peeks of {}", s.len());
    }

    #[test]
    fn per_process_invocations_never_overlap() {
        let spec = erase(FifoQueue::new());
        let w = Workload::balanced(p(), 11);
        let s = w.schedule(p(), spec.as_ref());
        let budget = (p().d * 2).max(p().d + p().u + p().epsilon);
        for pid in 0..p().n {
            let mut times: Vec<Time> =
                s.timed.iter().filter(|t| t.pid == Pid(pid)).map(|t| t.at).collect();
            times.sort();
            for w in times.windows(2) {
                assert!(w[1] - w[0] > budget, "overlap risk at {pid}");
            }
        }
    }

    #[test]
    fn falls_back_when_class_missing() {
        // GrowSet has no mixed operation; mixed draws must fall back.
        let spec = erase(GrowSet::new());
        let w = Workload {
            mix: Mix { accessors: 0, mutators: 0, mixed: 100 },
            ops_per_process: 10,
            max_gap: Time(10),
            seed: 5,
        };
        let s = w.schedule(p(), spec.as_ref());
        assert_eq!(s.len(), 10 * p().n);
    }
}
