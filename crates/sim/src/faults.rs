//! Deterministic, seedable fault injection.
//!
//! The paper's model (Section 2.2) assumes no failures and message delays
//! within `[d − u, d]`. A [`FaultPlan`] deliberately breaks those
//! assumptions — per-message drops, duplicates and delay overrides, node
//! crashes, and stall/resume windows — so that experiments can measure how
//! implementations degrade *outside* the model, and so the recovery layer in
//! `lintime-core` can be shown to restore linearizability under omission
//! faults.
//!
//! Every decision is a pure function of `(seed, kind, from, to, k)`, so a
//! plan injects the identical fault sequence on every run with the same
//! configuration: faulty runs are exactly as replayable as fault-free ones.
//! Faults actually injected are recorded in [`crate::run::Run::faults`].

use crate::rng::mix;
use crate::time::{ModelParams, Pid, Time};

/// Probability scale for per-message fault rules: parts per million.
///
/// Rates are stored as integers (not `f64`) so that plans are `Eq`,
/// hashable, and bit-for-bit portable across platforms.
pub const PPM: u32 = 1_000_000;

/// A probabilistic per-message rule on a set of links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRule {
    /// Sending process (`None` = any).
    pub from: Option<Pid>,
    /// Receiving process (`None` = any).
    pub to: Option<Pid>,
    /// Fault probability in parts per million (see [`PPM`]).
    pub rate_ppm: u32,
}

impl LinkRule {
    fn matches(&self, from: Pid, to: Pid) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A targeted delay override: the `k`-th message from `from` to `to` takes
/// exactly `delay` instead of what the [`crate::delay::DelaySpec`] assigns.
/// The override may lie outside `[d − u, d]`; such deliveries count toward
/// `delay_violations` as usual.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayOverride {
    /// Sending process.
    pub from: Pid,
    /// Receiving process.
    pub to: Pid,
    /// Per-link message index (0-based, counting retransmissions).
    pub k: u64,
    /// The delay to apply.
    pub delay: Time,
}

/// A stall window: every event at `pid` with real time in `[from, until)` is
/// deferred to `until` (the process freezes, then resumes and handles the
/// backlog).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled process.
    pub pid: Pid,
    /// Start of the freeze (inclusive).
    pub from: Time,
    /// End of the freeze (exclusive); deferred events fire here.
    pub until: Time,
}

/// A fault actually injected during a run, recorded for replay and
/// reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// A message was dropped at send time.
    Dropped {
        /// Sender.
        from: Pid,
        /// Intended recipient.
        to: Pid,
        /// Per-link message index.
        k: u64,
        /// Real send time.
        t_send: Time,
    },
    /// A message was delivered twice; the copy arrives at `t_extra`.
    Duplicated {
        /// Sender.
        from: Pid,
        /// Recipient.
        to: Pid,
        /// Per-link message index.
        k: u64,
        /// Real arrival time of the duplicate copy.
        t_extra: Time,
    },
    /// A message's delay was overridden to `delay`.
    DelayOverridden {
        /// Sender.
        from: Pid,
        /// Recipient.
        to: Pid,
        /// Per-link message index.
        k: u64,
        /// The delay applied instead of the spec's.
        delay: Time,
    },
    /// A process crashed: it takes no steps at or after `at`.
    Crashed {
        /// The crashed process.
        pid: Pid,
        /// Real crash time.
        at: Time,
    },
    /// A process stalled: events in `[from, until)` were deferred to
    /// `until`.
    Stalled {
        /// The stalled process.
        pid: Pid,
        /// Window start.
        from: Time,
        /// Window end.
        until: Time,
    },
}

/// A deterministic, seedable fault schedule.
///
/// Build one with the chainable constructors and thread it through
/// [`crate::engine::SimConfig::with_faults`] (or the live runtime's
/// `LiveConfig`). An empty plan injects nothing.
///
/// ```
/// use lintime_sim::prelude::*;
///
/// let plan = FaultPlan::new(42)
///     .drop_all(0.10)                      // 10% omission on every link
///     .crash(Pid(2), Time(5_000))          // p2 dies at t = 5000
///     .stall(Pid(1), Time(100), Time(400)); // p1 freezes for 300 ticks
/// assert!(!plan.is_empty());
/// // Decisions are pure functions of (seed, link, message index):
/// assert_eq!(plan.should_drop(Pid(0), Pid(1), 7), plan.should_drop(Pid(0), Pid(1), 7));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probabilistic drop rules.
    pub drops: Vec<LinkRule>,
    /// Exact drops: `(from, to, k)` triples dropped unconditionally.
    pub drops_exact: Vec<(Pid, Pid, u64)>,
    /// Probabilistic duplication rules.
    pub duplicates: Vec<LinkRule>,
    /// Targeted delay overrides.
    pub delay_overrides: Vec<DelayOverride>,
    /// Crash times per process.
    pub crashes: Vec<(Pid, Time)>,
    /// Stall windows.
    pub stalls: Vec<StallWindow>,
}

/// Domain-separation salts so drop and duplicate decisions on the same
/// message are independent.
const SALT_DROP: u64 = 0xD809_91DE_AD10_55E5;
const SALT_DUP: u64 = 0xD0B1_E0F0_0D5E_ED11;
const SALT_DUP_DELAY: u64 = 0x1A7E_C0FF_EE00_0D15;

fn rate_to_ppm(rate: f64) -> u32 {
    assert!((0.0..=1.0).contains(&rate), "fault rate must lie in [0, 1]");
    (rate * PPM as f64).round() as u32
}

impl FaultPlan {
    /// An empty plan with the given decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Drop every message on every link with probability `rate` ∈ [0, 1].
    pub fn drop_all(mut self, rate: f64) -> FaultPlan {
        self.drops.push(LinkRule { from: None, to: None, rate_ppm: rate_to_ppm(rate) });
        self
    }

    /// Drop messages from `from` to `to` with probability `rate` ∈ [0, 1].
    pub fn drop_link(mut self, from: Pid, to: Pid, rate: f64) -> FaultPlan {
        self.drops.push(LinkRule { from: Some(from), to: Some(to), rate_ppm: rate_to_ppm(rate) });
        self
    }

    /// Drop exactly the `k`-th message from `from` to `to` (0-based,
    /// counting every transmission on the link including retransmissions).
    pub fn drop_exact(mut self, from: Pid, to: Pid, k: u64) -> FaultPlan {
        self.drops_exact.push((from, to, k));
        self
    }

    /// Duplicate every message on every link with probability `rate`.
    pub fn duplicate_all(mut self, rate: f64) -> FaultPlan {
        self.duplicates.push(LinkRule { from: None, to: None, rate_ppm: rate_to_ppm(rate) });
        self
    }

    /// Override the delay of the `k`-th message from `from` to `to`.
    pub fn override_delay(mut self, from: Pid, to: Pid, k: u64, delay: Time) -> FaultPlan {
        self.delay_overrides.push(DelayOverride { from, to, k, delay });
        self
    }

    /// Crash `pid` at real time `at`: it takes no steps from then on.
    pub fn crash(mut self, pid: Pid, at: Time) -> FaultPlan {
        self.crashes.push((pid, at));
        self
    }

    /// Stall `pid` over `[from, until)`: its events are deferred to `until`.
    pub fn stall(mut self, pid: Pid, from: Time, until: Time) -> FaultPlan {
        assert!(from < until, "stall window must be non-empty");
        self.stalls.push(StallWindow { pid, from, until });
        self
    }

    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
            && self.drops_exact.is_empty()
            && self.duplicates.is_empty()
            && self.delay_overrides.is_empty()
            && self.crashes.is_empty()
            && self.stalls.is_empty()
    }

    fn decide(&self, salt: u64, from: Pid, to: Pid, k: u64, rules: &[LinkRule]) -> bool {
        // Effective rate = max over matching rules, so rule order is
        // irrelevant and decisions stay independent of unrelated rules.
        let rate =
            rules.iter().filter(|r| r.matches(from, to)).map(|r| r.rate_ppm).max().unwrap_or(0);
        if rate == 0 {
            return false;
        }
        if rate >= PPM {
            return true;
        }
        let h = mix(self.seed
            ^ salt
            ^ (from.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (to.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ k.wrapping_mul(0x1656_67B1_9E37_79F9));
        (h % PPM as u64) < rate as u64
    }

    /// Should the `k`-th message from `from` to `to` be dropped?
    pub fn should_drop(&self, from: Pid, to: Pid, k: u64) -> bool {
        self.drops_exact.contains(&(from, to, k))
            || self.decide(SALT_DROP, from, to, k, &self.drops)
    }

    /// Should the `k`-th message from `from` to `to` be duplicated?
    pub fn should_duplicate(&self, from: Pid, to: Pid, k: u64) -> bool {
        self.decide(SALT_DUP, from, to, k, &self.duplicates)
    }

    /// The admissible delay of the duplicate copy of message `k` (uniform in
    /// `[d − u, d]`, derived from the seed).
    pub fn duplicate_delay(&self, params: ModelParams, from: Pid, to: Pid, k: u64) -> Time {
        let h = mix(self.seed
            ^ SALT_DUP_DELAY
            ^ (from.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (to.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ k.wrapping_mul(0x1656_67B1_9E37_79F9));
        let span = (params.u.as_ticks() + 1) as u64;
        params.min_delay() + Time((h % span) as i64)
    }

    /// The delay override for message `k` on `(from, to)`, if any.
    pub fn delay_override(&self, from: Pid, to: Pid, k: u64) -> Option<Time> {
        self.delay_overrides
            .iter()
            .find(|o| o.from == from && o.to == to && o.k == k)
            .map(|o| o.delay)
    }

    /// The crash time of `pid`, if it is scheduled to crash.
    pub fn crashed_at(&self, pid: Pid) -> Option<Time> {
        self.crashes.iter().filter(|(p, _)| *p == pid).map(|(_, at)| *at).min()
    }

    /// If `pid` is stalled at real time `t`, the end of the (longest
    /// applicable) stall window; events should be deferred there.
    pub fn stall_until(&self, pid: Pid, t: Time) -> Option<Time> {
        self.stalls
            .iter()
            .filter(|w| w.pid == pid && w.from <= t && t < w.until)
            .map(|w| w.until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ModelParams {
        ModelParams::default_experiment()
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        for k in 0..100 {
            assert!(!plan.should_drop(Pid(0), Pid(1), k));
            assert!(!plan.should_duplicate(Pid(0), Pid(1), k));
            assert!(plan.delay_override(Pid(0), Pid(1), k).is_none());
        }
        assert!(plan.crashed_at(Pid(0)).is_none());
        assert!(plan.stall_until(Pid(0), Time(5)).is_none());
    }

    #[test]
    fn drop_decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::new(7).drop_all(0.25);
        let again = FaultPlan::new(7).drop_all(0.25);
        let mut dropped = 0;
        for k in 0..10_000 {
            let d = plan.should_drop(Pid(0), Pid(1), k);
            assert_eq!(d, again.should_drop(Pid(0), Pid(1), k));
            dropped += d as u32;
        }
        // 25% ± a generous margin.
        assert!((2_000..3_000).contains(&dropped), "{dropped}");
        // A different seed decides differently.
        let other = FaultPlan::new(8).drop_all(0.25);
        let agree = (0..1000)
            .filter(|&k| {
                plan.should_drop(Pid(0), Pid(1), k) == other.should_drop(Pid(0), Pid(1), k)
            })
            .count();
        assert!(agree < 1000);
    }

    #[test]
    fn link_rules_scope_correctly() {
        let plan = FaultPlan::new(3).drop_link(Pid(0), Pid(1), 1.0);
        for k in 0..50 {
            assert!(plan.should_drop(Pid(0), Pid(1), k));
            assert!(!plan.should_drop(Pid(1), Pid(0), k));
            assert!(!plan.should_drop(Pid(0), Pid(2), k));
        }
    }

    #[test]
    fn exact_drops_hit_only_their_index() {
        let plan = FaultPlan::new(0).drop_exact(Pid(2), Pid(0), 5);
        assert!(plan.should_drop(Pid(2), Pid(0), 5));
        assert!(!plan.should_drop(Pid(2), Pid(0), 4));
        assert!(!plan.should_drop(Pid(2), Pid(0), 6));
        assert!(!plan.should_drop(Pid(0), Pid(2), 5));
    }

    #[test]
    fn drop_and_duplicate_decisions_are_independent() {
        let plan = FaultPlan::new(11).drop_all(0.5).duplicate_all(0.5);
        let both = (0..1000)
            .filter(|&k| {
                plan.should_drop(Pid(0), Pid(1), k) && plan.should_duplicate(Pid(0), Pid(1), k)
            })
            .count();
        // If decisions were correlated this would be ~0 or ~500.
        assert!((150..350).contains(&both), "{both}");
    }

    #[test]
    fn duplicate_delay_is_admissible() {
        let plan = FaultPlan::new(5).duplicate_all(1.0);
        for k in 0..1000 {
            let d = plan.duplicate_delay(p(), Pid(0), Pid(1), k);
            assert!(p().delay_ok(d), "{d}");
        }
    }

    #[test]
    fn crash_and_stall_queries() {
        let plan = FaultPlan::new(0).crash(Pid(1), Time(100)).stall(Pid(2), Time(50), Time(80));
        assert_eq!(plan.crashed_at(Pid(1)), Some(Time(100)));
        assert_eq!(plan.crashed_at(Pid(0)), None);
        assert_eq!(plan.stall_until(Pid(2), Time(50)), Some(Time(80)));
        assert_eq!(plan.stall_until(Pid(2), Time(79)), Some(Time(80)));
        assert_eq!(plan.stall_until(Pid(2), Time(80)), None);
        assert_eq!(plan.stall_until(Pid(2), Time(49)), None);
        assert_eq!(plan.stall_until(Pid(1), Time(60)), None);
    }

    #[test]
    fn overlapping_stalls_defer_to_the_latest_end() {
        let plan =
            FaultPlan::new(0).stall(Pid(0), Time(10), Time(30)).stall(Pid(0), Time(20), Time(50));
        assert_eq!(plan.stall_until(Pid(0), Time(25)), Some(Time(50)));
        assert_eq!(plan.stall_until(Pid(0), Time(12)), Some(Time(30)));
    }

    #[test]
    #[should_panic(expected = "fault rate must lie in [0, 1]")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::new(0).drop_all(1.5);
    }
}
