//! A tiny deterministic pseudo-random number generator (SplitMix64).
//!
//! The workspace must build without network access, so the external `rand`
//! crate is replaced by this vendored generator. SplitMix64 passes BigCrush
//! and is more than adequate for workload generation and delay jitter; the
//! property that matters here is *reproducibility*: equal seeds produce equal
//! streams on every platform, which the fault-injection and shifting
//! machinery rely on.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG with a `rand`-like `gen_range` API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// A uniform draw from `range` (modulo reduction; the bias is ≤ 2⁻⁴⁰ for
    /// every range used in this workspace and irrelevant for workloads).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// One SplitMix64 finalization step: a high-quality 64-bit mix function,
/// also used directly for stateless per-message fault decisions.
pub fn mix(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z: i32 = rng.gen_range(0i32..3);
            assert!((0..3).contains(&z));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = SplitMix64::seed_from_u64(9);
        assert_eq!(rng.gen_range(4i64..=4), 4);
    }
}
