//! Message-delay models.
//!
//! The engine asks the delay model for the delay of each message as it is
//! sent. Models are *pure functions* of `(from, to, per-pair message index,
//! seed)` so runs are deterministic and replayable, which the shifting
//! machinery relies on.
//!
//! The paper's lower-bound constructions use *pair-wise uniform* delays given
//! by an `n×n` matrix `D` ([`DelaySpec::Matrix`]); Theorem 1's shift
//! transform maps matrices to matrices (see [`crate::engine::SimConfig::shifted`]).

use crate::time::{ModelParams, Pid, Time};

/// A deterministic message-delay assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelaySpec {
    /// Every message takes exactly this long.
    Constant(Time),
    /// Pair-wise uniform delays: `matrix[from][to]`. Diagonal entries are
    /// unused (processes do not message themselves).
    Matrix(Vec<Vec<Time>>),
    /// Independent per-message delays drawn uniformly from `[d - u, d]`,
    /// deterministically derived from the seed (splitmix-style hashing).
    UniformRandom {
        /// RNG seed; equal seeds give equal delay assignments.
        seed: u64,
    },
    /// Adversarially slow: maximum delay `d` everywhere. Equivalent to
    /// `Constant(d)` but self-describing in experiment configs.
    AllMax,
    /// Adversarially fast: minimum delay `d - u` everywhere.
    AllMin,
}

impl DelaySpec {
    /// Build a pair-wise uniform matrix from a function.
    pub fn matrix_from_fn(n: usize, mut f: impl FnMut(usize, usize) -> Time) -> DelaySpec {
        DelaySpec::Matrix((0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect())
    }

    /// The delay of the `k`-th message from `from` to `to`.
    pub fn delay(&self, params: ModelParams, from: Pid, to: Pid, k: u64) -> Time {
        match self {
            DelaySpec::Constant(t) => *t,
            DelaySpec::Matrix(m) => m[from.0][to.0],
            DelaySpec::UniformRandom { seed } => {
                let h = splitmix64(
                    seed ^ (from.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (to.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                        ^ k.wrapping_mul(0x1656_67B1_9E37_79F9),
                );
                let span = (params.u.as_ticks() + 1) as u64;
                params.min_delay() + Time((h % span) as i64)
            }
            DelaySpec::AllMax => params.d,
            DelaySpec::AllMin => params.min_delay(),
        }
    }

    /// Structural validity: a `Matrix` spec must be exactly `n × n`, or the
    /// per-message lookup would panic mid-run. Other specs are always valid.
    /// (Unlike [`DelaySpec::admissible`], out-of-range *values* are allowed —
    /// deliberately inadmissible delays are legitimate experiments.)
    pub fn validate_shape(&self, n: usize) -> Result<(), String> {
        if let DelaySpec::Matrix(m) = self {
            if m.len() != n {
                return Err(format!(
                    "delay matrix has {} rows but the model has n = {n} processes",
                    m.len()
                ));
            }
            for (i, row) in m.iter().enumerate() {
                if row.len() != n {
                    return Err(format!(
                        "delay matrix row {i} has {} entries but the model has n = {n} processes",
                        row.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check that every delay this spec can produce is admissible for
    /// `params`. For `Matrix`, checks all off-diagonal entries.
    pub fn admissible(&self, params: ModelParams) -> bool {
        match self {
            DelaySpec::Constant(t) => params.delay_ok(*t),
            DelaySpec::Matrix(m) => {
                m.len() == params.n
                    && m.iter().enumerate().all(|(i, row)| {
                        row.len() == params.n
                            && row.iter().enumerate().all(|(j, t)| i == j || params.delay_ok(*t))
                    })
            }
            DelaySpec::UniformRandom { .. } | DelaySpec::AllMax | DelaySpec::AllMin => true,
        }
    }

    /// The entries of a matrix spec, if this is one.
    pub fn as_matrix(&self) -> Option<&Vec<Vec<Time>>> {
        match self {
            DelaySpec::Matrix(m) => Some(m),
            _ => None,
        }
    }

    /// Materialize this spec as an explicit matrix (only for pair-wise
    /// uniform specs: `Constant`, `Matrix`, `AllMax`, `AllMin`).
    pub fn to_matrix(&self, params: ModelParams) -> Option<Vec<Vec<Time>>> {
        match self {
            DelaySpec::Matrix(m) => Some(m.clone()),
            DelaySpec::Constant(t) => Some(vec![vec![*t; params.n]; params.n]),
            DelaySpec::AllMax => Some(vec![vec![params.d; params.n]; params.n]),
            DelaySpec::AllMin => Some(vec![vec![params.min_delay(); params.n]; params.n]),
            DelaySpec::UniformRandom { .. } => None,
        }
    }
}

/// SplitMix64 hash step: uniform, fast, deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::default_experiment()
    }

    #[test]
    fn constant_and_extremes() {
        let p = params();
        assert_eq!(DelaySpec::AllMax.delay(p, Pid(0), Pid(1), 0), p.d);
        assert_eq!(DelaySpec::AllMin.delay(p, Pid(0), Pid(1), 0), p.min_delay());
        assert_eq!(DelaySpec::Constant(Time(4000)).delay(p, Pid(2), Pid(3), 9), Time(4000));
    }

    #[test]
    fn matrix_lookup() {
        let p = params();
        let spec = DelaySpec::matrix_from_fn(4, |i, j| Time(3600 + (i as i64) * 100 + j as i64));
        assert_eq!(spec.delay(p, Pid(2), Pid(1), 5), Time(3801));
        assert!(spec.admissible(p));
    }

    #[test]
    fn uniform_random_is_deterministic_and_in_range() {
        let p = params();
        let spec = DelaySpec::UniformRandom { seed: 42 };
        for k in 0..1000 {
            let d1 = spec.delay(p, Pid(0), Pid(1), k);
            let d2 = spec.delay(p, Pid(0), Pid(1), k);
            assert_eq!(d1, d2);
            assert!(p.delay_ok(d1), "delay {d1:?} out of range");
        }
        // Different seeds give different assignments (statistically).
        let other = DelaySpec::UniformRandom { seed: 43 };
        let same = (0..100)
            .filter(|&k| spec.delay(p, Pid(0), Pid(1), k) == other.delay(p, Pid(0), Pid(1), k))
            .count();
        assert!(same < 50);
    }

    #[test]
    fn uniform_random_spans_the_range() {
        let p = params();
        let spec = DelaySpec::UniformRandom { seed: 7 };
        let mut min_seen = Time::MAX;
        let mut max_seen = Time::MIN;
        for k in 0..5000 {
            let d = spec.delay(p, Pid(0), Pid(1), k);
            min_seen = min_seen.min(d);
            max_seen = max_seen.max(d);
        }
        // With 5000 samples over 2401 values both extremes should be close.
        assert!(min_seen <= p.min_delay() + Time(20));
        assert!(max_seen >= p.d - Time(20));
    }

    #[test]
    fn inadmissible_matrix_detected() {
        let p = params();
        let spec = DelaySpec::matrix_from_fn(4, |_, _| Time(100)); // below d - u
        assert!(!spec.admissible(p));
        let ok = DelaySpec::matrix_from_fn(4, |_, _| p.d);
        assert!(ok.admissible(p));
    }

    #[test]
    fn to_matrix_materializes() {
        let p = params();
        let m = DelaySpec::AllMin.to_matrix(p).unwrap();
        assert_eq!(m[0][1], p.min_delay());
        assert!(DelaySpec::UniformRandom { seed: 1 }.to_matrix(p).is_none());
    }
}
