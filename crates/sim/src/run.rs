//! Recorded runs: operation records, message records, timed views,
//! admissibility, and record-level shifting (Theorem 1).

use crate::faults::InjectedFault;
use crate::time::{ModelParams, Pid, Time};
use lintime_adt::spec::{Invocation, ObjectSpec, OpClass, OpInstance};
use lintime_adt::value::Value;
use std::fmt;

/// One operation instance as observed in a run: the invocation, the response
/// (if any), and their real times.
#[derive(Clone, Debug, PartialEq)]
pub struct OpRecord {
    /// Invoking process.
    pub pid: Pid,
    /// The invocation.
    pub invocation: Invocation,
    /// The return value, if the operation responded.
    pub ret: Option<Value>,
    /// Real time of the invocation event.
    pub t_invoke: Time,
    /// Real time of the response, if any.
    pub t_respond: Option<Time>,
}

impl OpRecord {
    /// Elapsed time of the operation, if completed.
    pub fn latency(&self) -> Option<Time> {
        self.t_respond.map(|t| t - self.t_invoke)
    }

    /// The completed instance `(op, arg, ret)`, if the operation responded.
    pub fn instance(&self) -> Option<OpInstance> {
        self.ret.as_ref().map(|ret| OpInstance {
            op: self.invocation.op,
            arg: self.invocation.arg.clone(),
            ret: ret.clone(),
        })
    }
}

/// One message as observed in a run.
#[derive(Clone, Debug, PartialEq)]
pub struct MsgRecord {
    /// Sender.
    pub from: Pid,
    /// Recipient.
    pub to: Pid,
    /// Real send time.
    pub t_send: Time,
    /// Real receive time (`None` if undelivered when the run was cut off).
    pub t_recv: Option<Time>,
}

impl MsgRecord {
    /// The message delay, if delivered.
    pub fn delay(&self) -> Option<Time> {
        self.t_recv.map(|t| t - self.t_send)
    }
}

/// The trigger of one step, as visible to the process (no real times).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepTrigger {
    /// An operation invocation arrived from the user.
    Invoke(String),
    /// A message arrived.
    Deliver {
        /// Sending process.
        from: Pid,
        /// Debug rendering of the payload.
        msg: String,
    },
    /// A timer went off.
    Timer(String),
}

/// One step of a process's view: the local clock reading, the trigger, and a
/// digest of the transition's outputs. Real times are deliberately absent —
/// "processes have no way of observing" them — so equal views across two runs
/// certify that the runs are indistinguishable to the process (the key fact
/// behind the shifting technique).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewStep {
    /// Local clock value at the step.
    pub local_time: Time,
    /// The triggering event.
    pub trigger: StepTrigger,
    /// Number of messages sent by the transition.
    pub sends: usize,
    /// Debug rendering of the response, if one was produced.
    pub response: Option<String>,
}

/// A recorded run of the engine.
#[derive(Clone, Debug)]
pub struct Run {
    /// Model parameters of the run.
    pub params: ModelParams,
    /// Clock offsets: local = real + `offsets[i]` at process `p_i`.
    pub offsets: Vec<Time>,
    /// All operations, in invocation order.
    pub ops: Vec<OpRecord>,
    /// All messages (empty unless message recording was enabled).
    pub msgs: Vec<MsgRecord>,
    /// Per-process views (empty unless view recording was enabled).
    pub views: Vec<Vec<ViewStep>>,
    /// Real time of the last processed event.
    pub last_time: Time,
    /// Number of events processed.
    pub events: u64,
    /// Engine-detected protocol errors (e.g. overlapping invocations at one
    /// process). Empty in well-formed experiments.
    pub errors: Vec<String>,
    /// Delay-admissibility violations observed while running (messages with
    /// delay outside `[d - u, d]`).
    pub delay_violations: u64,
    /// True iff the engine stopped before quiescence (event cap reached or
    /// invalid configuration). Truncated runs must never be certified
    /// linearizable: operations and messages past the cutoff are missing.
    pub truncated: bool,
    /// Number of pending (never-responded) operations attributable to an
    /// injected crash of their invoking process. Part of the run honesty
    /// flags: a run with `pending ops == crashed_pending` lost responses
    /// *only* to crashes, not to protocol bugs or truncation.
    pub crashed_pending: u64,
    /// Open-loop arrivals (see [`crate::schedule::Schedule::open`]) that
    /// arrived during the run but were still waiting in a process's ingress
    /// queue when it ended. They never became invocations, so they appear in
    /// no [`OpRecord`]; a nonzero count means the offered load outran the
    /// service rate for the duration of the run.
    pub unadmitted: u64,
    /// Protocol messages sent by nodes (each `Effects::send` counts once,
    /// whether or not the network later dropped it; fault-injected duplicates
    /// are not protocol cost and are excluded).
    pub msgs_sent: u64,
    /// Total estimated wire bytes of all protocol messages sent (see
    /// [`crate::node::Node::msg_wire_bytes`]).
    pub bytes_sent: u64,
    /// Faults injected by the configured [`crate::faults::FaultPlan`], in
    /// injection order. Empty for fault-free runs.
    pub faults: Vec<InjectedFault>,
    /// Diagnostics from runtime violation detectors (e.g. a mutator arriving
    /// with a timestamp older than the execution frontier). Non-empty means
    /// the run is *suspect*: responses may reflect out-of-model behavior and
    /// a linearizability verdict should not be trusted without scrutiny.
    pub suspect: Vec<String>,
}

impl Run {
    /// True iff every invocation received a response (the first correctness
    /// requirement of Section 2.3).
    pub fn complete(&self) -> bool {
        self.ops.iter().all(|op| op.ret.is_some())
    }

    /// True iff a violation detector flagged this run (see
    /// [`Run::suspect`]).
    pub fn is_suspect(&self) -> bool {
        !self.suspect.is_empty()
    }

    /// True iff the run is trustworthy enough to certify: it ran to
    /// quiescence (not truncated) and no violation detector fired.
    pub fn certifiable(&self) -> bool {
        !self.truncated && !self.is_suspect()
    }

    /// True iff the run is admissible: clock skews within ε and all observed
    /// message delays within `[d - u, d]`.
    pub fn is_admissible(&self) -> bool {
        self.skew() <= self.params.epsilon && self.delay_violations == 0
    }

    /// Maximum pairwise clock skew.
    pub fn skew(&self) -> Time {
        let max = self.offsets.iter().copied().max().unwrap_or(Time::ZERO);
        let min = self.offsets.iter().copied().min().unwrap_or(Time::ZERO);
        max - min
    }

    /// All completed operations with their instances and intervals.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|op| op.ret.is_some())
    }

    /// All pending (never-responded) operations.
    pub fn pending(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(|op| op.ret.is_none())
    }

    /// Protocol messages sent per completed operation (`None` if nothing
    /// completed). The communication-cost figure of merit alongside latency.
    pub fn msgs_per_completed_op(&self) -> Option<f64> {
        let done = self.completed().count();
        (done > 0).then(|| self.msgs_sent as f64 / done as f64)
    }

    /// Estimated wire bytes sent per completed operation (`None` if nothing
    /// completed).
    pub fn bytes_per_completed_op(&self) -> Option<f64> {
        let done = self.completed().count();
        (done > 0).then(|| self.bytes_sent as f64 / done as f64)
    }

    /// Latencies of all completed instances of operation `op` (all, if `None`).
    pub fn latencies(&self, op: Option<&str>) -> Vec<Time> {
        self.completed()
            .filter(|r| op.is_none_or(|name| r.invocation.op == name))
            .filter_map(|r| r.latency())
            .collect()
    }

    /// Worst-case latency over completed instances of `op` (all ops if `None`).
    pub fn max_latency(&self, op: Option<&str>) -> Option<Time> {
        self.latencies(op).into_iter().max()
    }

    /// `last-time` of the run (Section 2.2): the maximum real time of any
    /// step; equals `self.last_time`.
    pub fn last_time(&self) -> Time {
        self.last_time
    }

    /// Record-level `shift(R, x̄)`: move every step of `p_i` by `x[i]`.
    ///
    /// Per Theorem 1 this changes the clock offset of `p_i` to `c_i − x_i`
    /// and the delay of a message from `p_i` to `p_j` to `δ − x_i + x_j`,
    /// while every process's *view* is unchanged. The returned run reflects
    /// exactly that; `delay_violations` is recomputed from the shifted
    /// message records (which requires message recording to have been on if
    /// you intend to re-check admissibility).
    pub fn shifted(&self, x: &[Time]) -> Run {
        assert_eq!(x.len(), self.offsets.len(), "need one shift per process");
        let ops = self
            .ops
            .iter()
            .map(|op| OpRecord {
                pid: op.pid,
                invocation: op.invocation.clone(),
                ret: op.ret.clone(),
                t_invoke: op.t_invoke + x[op.pid.0],
                t_respond: op.t_respond.map(|t| t + x[op.pid.0]),
            })
            .collect::<Vec<_>>();
        let msgs: Vec<MsgRecord> = self
            .msgs
            .iter()
            .map(|m| MsgRecord {
                from: m.from,
                to: m.to,
                t_send: m.t_send + x[m.from.0],
                t_recv: m.t_recv.map(|t| t + x[m.to.0]),
            })
            .collect();
        let offsets: Vec<Time> = self.offsets.iter().zip(x).map(|(c, xi)| *c - *xi).collect();
        let delay_violations =
            msgs.iter().filter_map(MsgRecord::delay).filter(|d| !self.params.delay_ok(*d)).count()
                as u64;
        let last_time = ops
            .iter()
            .flat_map(|o| [Some(o.t_invoke), o.t_respond])
            .flatten()
            .chain(msgs.iter().flat_map(|m| [Some(m.t_send), m.t_recv]).flatten())
            .max()
            .unwrap_or(self.last_time);
        Run {
            params: self.params,
            offsets,
            ops,
            msgs,
            views: self.views.clone(), // views are shift-invariant
            last_time,
            events: self.events,
            errors: self.errors.clone(),
            delay_violations,
            truncated: self.truncated,
            crashed_pending: self.crashed_pending,
            unadmitted: self.unadmitted,
            msgs_sent: self.msgs_sent,
            bytes_sent: self.bytes_sent,
            faults: self.faults.clone(),
            suspect: self.suspect.clone(),
        }
    }

    /// Break [`Run::crashed_pending`] down by operation class: how many of
    /// the crash-attributable pending operations were pure mutators, pure
    /// accessors, or mixed under `spec`. Operations the spec does not know
    /// are counted as mixed (the conservative bucket — they may both have
    /// taken effect and carry an unobserved response value, exactly the
    /// completions the pending-aware checker must enumerate).
    pub fn crashed_pending_by_class(&self, spec: &dyn ObjectSpec) -> CrashedPendingByClass {
        let crashed = |pid: Pid| {
            self.faults
                .iter()
                .any(|f| matches!(f, InjectedFault::Crashed { pid: p, .. } if *p == pid))
        };
        let mut by_class = CrashedPendingByClass::default();
        for op in self.pending() {
            // Same attribution rule as the engine's `crashed_pending`: every
            // pending op of a crashed invoker, so `total()` matches it.
            if !crashed(op.pid) {
                continue;
            }
            match spec.op_meta(op.invocation.op).map(|m| m.class) {
                Some(OpClass::PureMutator) => by_class.mutators += 1,
                Some(OpClass::PureAccessor) => by_class.accessors += 1,
                Some(OpClass::Mixed) | None => by_class.mixed += 1,
            }
        }
        by_class
    }

    /// Compare per-process views with another run (both must have view
    /// recording enabled). Used to validate the shifting theorem: a run and
    /// its re-executed shift must have identical views.
    pub fn views_equal(&self, other: &Run) -> bool {
        self.views == other.views
    }
}

/// [`Run::crashed_pending`] broken down by the pending operation's class
/// (see [`Run::crashed_pending_by_class`]). Pure-mutator losses are cheap
/// for the checker (their completions are ret-free); mixed losses are the
/// expensive bucket (every completion response value must be enumerated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashedPendingByClass {
    /// Crash-attributable pending pure mutators.
    pub mutators: u64,
    /// Crash-attributable pending pure accessors.
    pub accessors: u64,
    /// Crash-attributable pending mixed (or unclassifiable) operations.
    pub mixed: u64,
}

impl CrashedPendingByClass {
    /// Total across all classes (equals [`Run::crashed_pending`]).
    pub fn total(&self) -> u64 {
        self.mutators + self.accessors + self.mixed
    }
}

impl fmt::Display for CrashedPendingByClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m/{}a/{}x", self.mutators, self.accessors, self.mixed)
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} ops ({} complete), {} sends ({} bytes), last_time {}, admissible: {}{}{}{}{}{}",
            self.ops.len(),
            self.completed().count(),
            self.msgs_sent,
            self.bytes_sent,
            self.last_time,
            self.is_admissible(),
            if self.truncated { ", TRUNCATED" } else { "" },
            if self.is_suspect() { ", SUSPECT" } else { "" },
            if self.crashed_pending > 0 {
                format!(", {} crashed-pending", self.crashed_pending)
            } else {
                String::new()
            },
            if self.unadmitted > 0 {
                format!(", {} unadmitted arrivals", self.unadmitted)
            } else {
                String::new()
            },
            if self.faults.is_empty() {
                String::new()
            } else {
                format!(", {} injected faults", self.faults.len())
            }
        )?;
        for op in &self.ops {
            writeln!(
                f,
                "  {} {:?} [{} .. {}] -> {:?}",
                op.pid,
                op.invocation,
                op.t_invoke,
                op.t_respond.map_or("pending".to_string(), |t| t.to_string()),
                op.ret
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> Run {
        let params = ModelParams::default_experiment();
        Run {
            params,
            offsets: vec![Time(0); 4],
            ops: vec![
                OpRecord {
                    pid: Pid(0),
                    invocation: Invocation::new("write", 1),
                    ret: Some(Value::Unit),
                    t_invoke: Time(100),
                    t_respond: Some(Time(1900)),
                },
                OpRecord {
                    pid: Pid(1),
                    invocation: Invocation::nullary("read"),
                    ret: Some(Value::Int(1)),
                    t_invoke: Time(2000),
                    t_respond: Some(Time(8000)),
                },
            ],
            msgs: vec![MsgRecord {
                from: Pid(0),
                to: Pid(1),
                t_send: Time(100),
                t_recv: Some(Time(3700)),
            }],
            views: vec![Vec::new(); 4],
            last_time: Time(8000),
            events: 10,
            errors: Vec::new(),
            delay_violations: 0,
            truncated: false,
            crashed_pending: 0,
            unadmitted: 0,
            msgs_sent: 1,
            bytes_sent: 24,
            faults: Vec::new(),
            suspect: Vec::new(),
        }
    }

    #[test]
    fn completeness_and_latency() {
        let run = sample_run();
        assert!(run.complete());
        assert_eq!(run.max_latency(Some("write")), Some(Time(1800)));
        assert_eq!(run.max_latency(Some("read")), Some(Time(6000)));
        assert_eq!(run.max_latency(None), Some(Time(6000)));
        assert_eq!(run.latencies(Some("nothing")), vec![]);
    }

    #[test]
    fn admissibility_depends_on_skew_and_delays() {
        let mut run = sample_run();
        assert!(run.is_admissible());
        run.offsets[0] = Time(5000); // skew 5000 > ε = 1800
        assert!(!run.is_admissible());
    }

    #[test]
    fn shifting_follows_theorem_1() {
        let run = sample_run();
        let x = [Time(600), Time(-600), Time(0), Time(0)];
        let shifted = run.shifted(&x);
        // Offsets: c_i - x_i.
        assert_eq!(shifted.offsets[0], Time(-600));
        assert_eq!(shifted.offsets[1], Time(600));
        // Op intervals move with their process.
        assert_eq!(shifted.ops[0].t_invoke, Time(700));
        assert_eq!(shifted.ops[1].t_invoke, Time(1400));
        // Message delay: δ - x_from + x_to = 3600 - 600 - 600 = 2400 < d - u.
        assert_eq!(shifted.msgs[0].delay(), Some(Time(2400)));
        assert_eq!(shifted.delay_violations, 1);
        assert!(!shifted.is_admissible());
        // Skew became 1200 ≤ ε, so inadmissibility is purely delay-driven.
        assert_eq!(shifted.skew(), Time(1200));
    }

    #[test]
    fn zero_shift_is_identity() {
        let run = sample_run();
        let shifted = run.shifted(&[Time::ZERO; 4]);
        assert_eq!(shifted.ops, run.ops);
        assert_eq!(shifted.msgs, run.msgs);
        assert_eq!(shifted.offsets, run.offsets);
        assert!(shifted.is_admissible());
    }

    #[test]
    fn comm_cost_per_completed_op() {
        let mut run = sample_run();
        assert_eq!(run.msgs_per_completed_op(), Some(0.5));
        assert_eq!(run.bytes_per_completed_op(), Some(12.0));
        assert_eq!(run.pending().count(), 0);
        run.ops[1].ret = None;
        run.ops[1].t_respond = None;
        assert_eq!(run.pending().count(), 1);
        assert_eq!(run.msgs_per_completed_op(), Some(1.0));
    }

    #[test]
    fn crashed_pending_breaks_down_by_class() {
        let mut run = sample_run();
        // The reader crashed mid-operation; the writer's pending op is NOT
        // crash-attributable (no fault for its pid) and must not be counted.
        run.ops[0].ret = None;
        run.ops[0].t_respond = None;
        run.ops[1].ret = None;
        run.ops[1].t_respond = None;
        run.faults.push(InjectedFault::Crashed { pid: Pid(1), at: Time(2500) });
        let spec = lintime_adt::spec::erase(lintime_adt::types::Register::new(0));
        let by_class = run.crashed_pending_by_class(spec.as_ref());
        assert_eq!(by_class.accessors, 1);
        assert_eq!(by_class.mutators, 0);
        assert_eq!(by_class.mixed, 0);
        assert_eq!(by_class.total(), 1);
        assert_eq!(by_class.to_string(), "0m/1a/0x");
        // Once the writer's crash is recorded too, its pure-mutator pending
        // op joins the breakdown — matching the engine's attribution.
        run.faults.push(InjectedFault::Crashed { pid: Pid(0), at: Time(50) });
        let both = run.crashed_pending_by_class(spec.as_ref());
        assert_eq!((both.mutators, both.accessors, both.total()), (1, 1, 2));
    }

    #[test]
    fn instance_extraction() {
        let run = sample_run();
        let inst = run.ops[1].instance().unwrap();
        assert_eq!(inst.op, "read");
        assert_eq!(inst.ret, Value::Int(1));
    }
}
