//! Run fragments, the `chop` operator, and appendability (Section 4.1).
//!
//! The paper's "modified shift" technique starts from an admissible run with
//! pair-wise uniform delays, shifts it so that *exactly one* ordered pair of
//! processes has an invalid delay, and then **chops** each process's timed
//! view just before information through the invalid channel could reach it.
//! Lemma 2 states the result is again a run fragment whose delays are all
//! valid. This module implements `chop` as surgery on recorded [`Run`]s and
//! provides an executable check of Lemma 2's two claims, which the property
//! tests exercise with random shift vectors and delay matrices.

use crate::run::{MsgRecord, OpRecord, Run};
use crate::time::{Pid, Time};

/// A chopped run fragment: the original records truncated at per-process cut
/// times.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Per-process cut times (real): every step of `p_i` at time ≥ `cuts[i]`
    /// has been removed.
    pub cuts: Vec<Time>,
    /// Surviving operation records (responses after the cut are removed).
    pub ops: Vec<OpRecord>,
    /// Surviving message records (receipts after the recipient's cut become
    /// undelivered).
    pub msgs: Vec<MsgRecord>,
}

/// Errors from [`chop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChopError {
    /// The run records contain no message from `s` to `r`, so `t_m` is
    /// undefined.
    NoMessageOnInvalidChannel,
    /// Message recording was disabled for the run.
    NoMessageRecords,
}

/// All-pairs shortest path distances with respect to a delay matrix
/// (Dijkstra is overkill at these sizes; Floyd–Warshall keeps it simple).
pub fn shortest_paths(matrix: &[Vec<Time>]) -> Vec<Vec<Time>> {
    let n = matrix.len();
    let mut dist = vec![vec![Time::MAX; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = Time::ZERO;
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                dist[i][j] = matrix[i][j];
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if dist[i][k] != Time::MAX && dist[k][j] != Time::MAX {
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
    }
    dist
}

/// `chop(R, δ)` for a run with pair-wise uniform delays `matrix` in which the
/// single invalid delay is on the channel `s → r` (Section 4.1):
///
/// * `t_m` — real time of the first message from `s` to `r`;
/// * `p_r` is cut just before `t* = t_m + min(d_sr, δ)`;
/// * every other `p_i` is cut just before `t* + δ_ri` where `δ_ri` is the
///   shortest-path distance from `r` to `i` in `matrix`.
pub fn chop(
    run: &Run,
    matrix: &[Vec<Time>],
    s: Pid,
    r: Pid,
    delta: Time,
) -> Result<Fragment, ChopError> {
    if run.msgs.is_empty() && !run.ops.is_empty() {
        return Err(ChopError::NoMessageRecords);
    }
    let t_m = run
        .msgs
        .iter()
        .filter(|m| m.from == s && m.to == r)
        .map(|m| m.t_send)
        .min()
        .ok_or(ChopError::NoMessageOnInvalidChannel)?;
    let n = matrix.len();
    let d_sr = matrix[s.0][r.0];
    let t_star = t_m + d_sr.min(delta);
    let dist = shortest_paths(matrix);
    let mut cuts = vec![Time::ZERO; n];
    for (i, cut) in cuts.iter_mut().enumerate() {
        *cut = if i == r.0 { t_star } else { t_star + dist[r.0][i] };
    }
    Ok(apply_cuts(run, &cuts))
}

/// Truncate a run at per-process cut times: steps at time ≥ `cuts[i]` are
/// removed from `p_i`'s view.
pub fn apply_cuts(run: &Run, cuts: &[Time]) -> Fragment {
    let ops = run
        .ops
        .iter()
        .filter(|op| op.t_invoke < cuts[op.pid.0])
        .map(|op| {
            let mut op = op.clone();
            if op.t_respond.is_some_and(|t| t >= cuts[op.pid.0]) {
                op.t_respond = None;
                op.ret = None;
            }
            op
        })
        .collect();
    let msgs = run
        .msgs
        .iter()
        .filter(|m| m.t_send < cuts[m.from.0])
        .map(|m| {
            let mut m = m.clone();
            if m.t_recv.is_some_and(|t| t >= cuts[m.to.0]) {
                m.t_recv = None;
            }
            m
        })
        .collect();
    Fragment { cuts: cuts.to_vec(), ops, msgs }
}

impl Fragment {
    /// First real time of any surviving step (`first-time` in the paper).
    pub fn first_time(&self) -> Option<Time> {
        self.ops.iter().map(|o| o.t_invoke).chain(self.msgs.iter().map(|m| m.t_send)).min()
    }

    /// Last real time of any surviving step.
    pub fn last_time(&self) -> Option<Time> {
        self.ops
            .iter()
            .flat_map(|o| [Some(o.t_invoke), o.t_respond])
            .flatten()
            .chain(self.msgs.iter().flat_map(|m| [Some(m.t_send), m.t_recv]).flatten())
            .max()
    }

    /// Executable check of Lemma 2 for this fragment:
    ///
    /// 1. every message **received** in the fragment has delay in
    ///    `[d - u, d]`;
    /// 2. every message sent but **not received** in the fragment has its
    ///    recipient's view cut before `t_send + d`;
    /// 3. the fragment is *closed*: every surviving receipt's send also
    ///    survives (sends happen before the sender's cut).
    pub fn verify_lemma2(&self, params: crate::time::ModelParams) -> Result<(), String> {
        for m in &self.msgs {
            match m.t_recv {
                Some(t_recv) => {
                    let delay = t_recv - m.t_send;
                    if !params.delay_ok(delay) {
                        return Err(format!(
                            "received message {}→{} has invalid delay {delay:?}",
                            m.from, m.to
                        ));
                    }
                    if t_recv >= self.cuts[m.to.0] {
                        return Err(format!(
                            "message {}→{} received after the recipient's cut",
                            m.from, m.to
                        ));
                    }
                }
                None => {
                    // Cuts are exclusive: surviving steps are strictly before
                    // the cut, so admissibility ("last step < t_send + d")
                    // holds iff cut ≤ t_send + d.
                    if self.cuts[m.to.0] > m.t_send + params.d {
                        return Err(format!(
                            "undelivered message {}→{} but recipient survives past t_send + d",
                            m.from, m.to
                        ));
                    }
                }
            }
            if m.t_send >= self.cuts[m.from.0] {
                return Err(format!("message {}→{} sent after the sender's cut", m.from, m.to));
            }
        }
        Ok(())
    }

    /// Appendability check (Section 4.1): this fragment may be appended to a
    /// complete run `prefix` when the clock offsets agree and this fragment
    /// starts strictly after `prefix` ends. (The state-continuity condition
    /// is discharged by History Oblivion for the algorithms we run; it is not
    /// checkable at the record level.)
    pub fn appendable_to(&self, prefix: &Run) -> Result<(), String> {
        if !prefix.complete() {
            return Err("prefix run is not complete".into());
        }
        if let Some(ft) = self.first_time() {
            if ft <= prefix.last_time() {
                return Err(format!(
                    "fragment starts at {ft:?}, not after prefix last-time {:?}",
                    prefix.last_time()
                ));
            }
        }
        Ok(())
    }

    /// Append this fragment's records to a prefix run, producing a combined
    /// record set (offsets and params taken from the prefix).
    pub fn append_to(&self, prefix: &Run) -> Result<Run, String> {
        self.appendable_to(prefix)?;
        let mut ops = prefix.ops.clone();
        ops.extend(self.ops.iter().cloned());
        let mut msgs = prefix.msgs.clone();
        msgs.extend(self.msgs.iter().cloned());
        let last_time = self.last_time().unwrap_or(prefix.last_time()).max(prefix.last_time());
        let delay_violations = msgs
            .iter()
            .filter_map(MsgRecord::delay)
            .filter(|d| !prefix.params.delay_ok(*d))
            .count() as u64;
        Ok(Run {
            params: prefix.params,
            offsets: prefix.offsets.clone(),
            ops,
            msgs,
            views: Vec::new(),
            last_time,
            events: prefix.events,
            errors: prefix.errors.clone(),
            delay_violations,
            truncated: prefix.truncated,
            crashed_pending: prefix.crashed_pending,
            unadmitted: prefix.unadmitted,
            msgs_sent: prefix.msgs_sent,
            bytes_sent: prefix.bytes_sent,
            faults: prefix.faults.clone(),
            suspect: prefix.suspect.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ModelParams;
    use lintime_adt::spec::Invocation;
    use lintime_adt::value::Value;

    fn params() -> ModelParams {
        ModelParams::default_experiment()
    }

    fn mk_run(ops: Vec<OpRecord>, msgs: Vec<MsgRecord>) -> Run {
        let last = msgs
            .iter()
            .flat_map(|m| [Some(m.t_send), m.t_recv])
            .flatten()
            .chain(ops.iter().flat_map(|o| [Some(o.t_invoke), o.t_respond]).flatten())
            .max()
            .unwrap_or(Time::ZERO);
        Run {
            params: params(),
            offsets: vec![Time::ZERO; 4],
            ops,
            msgs,
            views: Vec::new(),
            last_time: last,
            events: 0,
            errors: Vec::new(),
            delay_violations: 0,
            truncated: false,
            crashed_pending: 0,
            unadmitted: 0,
            msgs_sent: 0,
            bytes_sent: 0,
            faults: Vec::new(),
            suspect: Vec::new(),
        }
    }

    #[test]
    fn shortest_paths_uniform_matrix() {
        let m = vec![vec![Time(10); 3]; 3];
        let d = shortest_paths(&m);
        assert_eq!(d[0][0], Time::ZERO);
        assert_eq!(d[0][1], Time(10));
        assert_eq!(d[2][1], Time(10));
    }

    #[test]
    fn shortest_paths_prefers_two_hops() {
        // 0→1 direct is 100; 0→2→1 is 10+10.
        let mut m = vec![vec![Time(100); 3]; 3];
        m[0][2] = Time(10);
        m[2][1] = Time(10);
        let d = shortest_paths(&m);
        assert_eq!(d[0][1], Time(20));
    }

    #[test]
    fn chop_cuts_at_proof_times() {
        let p = params();
        // Matrix with a single invalid delay 1→0 of d + m.
        let m_extra = p.m();
        let mut matrix = vec![vec![p.d; 4]; 4];
        matrix[1][0] = p.d + m_extra;
        let msgs = vec![
            MsgRecord {
                from: Pid(1),
                to: Pid(0),
                t_send: Time(100),
                t_recv: Some(Time(100) + p.d + m_extra),
            },
            MsgRecord {
                from: Pid(1),
                to: Pid(2),
                t_send: Time(100),
                t_recv: Some(Time(100) + p.d),
            },
        ];
        let run = mk_run(Vec::new(), msgs);
        let delta = p.d - m_extra;
        let frag = chop(&run, &matrix, Pid(1), Pid(0), delta).unwrap();
        // t* = 100 + min(d + m, d - m) = 100 + d - m.
        let t_star = Time(100) + p.d - m_extra;
        assert_eq!(frag.cuts[0], t_star);
        // Others cut at t* + shortest path from p0 (all edges d).
        assert_eq!(frag.cuts[1], t_star + p.d);
        assert_eq!(frag.cuts[2], t_star + p.d);
        // The invalid message is no longer received (recv at 100 + d + m ≥ cut).
        assert!(frag.msgs[0].t_recv.is_none());
        assert!(frag.verify_lemma2(p).is_ok());
    }

    #[test]
    fn chop_requires_message_on_invalid_channel() {
        let run = mk_run(
            Vec::new(),
            vec![MsgRecord { from: Pid(0), to: Pid(1), t_send: Time(0), t_recv: Some(Time(6000)) }],
        );
        let matrix = vec![vec![params().d; 4]; 4];
        assert_eq!(
            chop(&run, &matrix, Pid(2), Pid(3), Time(4000)).unwrap_err(),
            ChopError::NoMessageOnInvalidChannel
        );
    }

    #[test]
    fn apply_cuts_truncates_ops_and_msgs() {
        let ops = vec![
            OpRecord {
                pid: Pid(0),
                invocation: Invocation::nullary("read"),
                ret: Some(Value::Int(1)),
                t_invoke: Time(10),
                t_respond: Some(Time(50)),
            },
            OpRecord {
                pid: Pid(1),
                invocation: Invocation::nullary("read"),
                ret: Some(Value::Int(2)),
                t_invoke: Time(100),
                t_respond: Some(Time(150)),
            },
        ];
        let run = mk_run(ops, Vec::new());
        let frag = apply_cuts(&run, &[Time(40), Time(120), Time(0), Time(0)]);
        // p0's op survives but loses its response (respond at 50 ≥ cut 40).
        assert_eq!(frag.ops.len(), 2);
        assert!(frag.ops[0].ret.is_none());
        // p1's op survives intact? invoked at 100 < 120 but responds 150 ≥ 120.
        assert!(frag.ops[1].ret.is_none());
    }

    #[test]
    fn append_requires_gap() {
        let prefix = mk_run(
            vec![OpRecord {
                pid: Pid(0),
                invocation: Invocation::nullary("read"),
                ret: Some(Value::Int(0)),
                t_invoke: Time(0),
                t_respond: Some(Time(100)),
            }],
            Vec::new(),
        );
        let late = Fragment {
            cuts: vec![Time::MAX; 4],
            ops: vec![OpRecord {
                pid: Pid(1),
                invocation: Invocation::nullary("read"),
                ret: Some(Value::Int(0)),
                t_invoke: Time(200),
                t_respond: Some(Time(300)),
            }],
            msgs: Vec::new(),
        };
        let combined = late.append_to(&prefix).unwrap();
        assert_eq!(combined.ops.len(), 2);
        assert_eq!(combined.last_time, Time(300));

        let early = Fragment {
            cuts: vec![Time::MAX; 4],
            ops: vec![OpRecord {
                pid: Pid(1),
                invocation: Invocation::nullary("read"),
                ret: None,
                t_invoke: Time(50),
                t_respond: None,
            }],
            msgs: Vec::new(),
        };
        assert!(early.append_to(&prefix).is_err());
    }

    #[test]
    fn lemma2_detects_violations() {
        let p = params();
        // A "fragment" where an invalid-delay message is still received.
        let frag = Fragment {
            cuts: vec![Time::MAX; 4],
            ops: Vec::new(),
            msgs: vec![MsgRecord {
                from: Pid(0),
                to: Pid(1),
                t_send: Time(0),
                t_recv: Some(p.d + Time(1)),
            }],
        };
        assert!(frag.verify_lemma2(p).is_err());
        // An undelivered message whose recipient lives too long.
        let frag2 = Fragment {
            cuts: vec![Time::MAX, Time::MAX, Time::MAX, Time::MAX],
            ops: Vec::new(),
            msgs: vec![MsgRecord { from: Pid(0), to: Pid(1), t_send: Time(0), t_recv: None }],
        };
        assert!(frag2.verify_lemma2(p).is_err());
    }
}
