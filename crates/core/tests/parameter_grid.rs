//! Algorithm 1 across a grid of model parameters: Lemma 4 exactness and
//! linearizability must hold for every admissible (n, d, u, ε, X)
//! combination, including the edges (u = d, ε = 0, X = d − ε, n = 2).

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_sim::prelude::*;

fn grid() -> Vec<ModelParams> {
    let mut out = Vec::new();
    for n in [2usize, 3, 5] {
        for (d, u) in [(Time(6000), Time(2400)), (Time(6000), Time(6000)), (Time(1200), Time(120))]
        {
            // Optimal skew, zero skew bound, and a loose skew bound.
            for eps in [ModelParams::optimal_epsilon(n, u), Time::ZERO, u] {
                out.push(ModelParams::new(n, d, u, eps));
            }
        }
    }
    out
}

#[test]
fn lemma_4_exact_on_the_whole_grid() {
    let spec = erase(FifoQueue::new());
    for p in grid() {
        for x in [Time::ZERO, (p.d - p.epsilon) / 2, p.d - p.epsilon] {
            let gap = p.d * 3;
            let schedule = Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
                .at(Pid(1 % p.n), gap, Invocation::nullary("peek"))
                .at(Pid(0), gap * 2, Invocation::nullary("dequeue"));
            let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(schedule);
            let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
            assert!(run.complete(), "{p:?} X={x}: {run}");
            assert!(run.errors.is_empty(), "{p:?} X={x}: {:?}", run.errors);
            assert_eq!(run.ops[0].latency(), Some(x + p.epsilon), "{p:?} X={x} MOP");
            assert_eq!(run.ops[1].latency(), Some(p.d - x), "{p:?} X={x} AOP");
            assert_eq!(run.ops[2].latency(), Some(p.d + p.epsilon), "{p:?} X={x} OOP");
        }
    }
}

#[test]
fn linearizable_under_contention_on_the_whole_grid() {
    let spec = erase(RmwRegister::new(0));
    for p in grid() {
        let x = (p.d - p.epsilon) / 3;
        // Concurrent rmw from every process, reads afterwards.
        let mut schedule = Schedule::new();
        for i in 0..p.n {
            schedule = schedule.at(Pid(i), Time(i as i64 * 3), Invocation::new("rmw", 1));
        }
        schedule = schedule.at(Pid(0), p.d * 5, Invocation::nullary("read"));
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 31 }).with_schedule(schedule);
        let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
        assert!(run.complete(), "{p:?}");
        let history = History::from_run(&run).unwrap();
        assert!(check(&spec, &history).is_linearizable(), "{p:?}: {run}");
        // All rmw tickets distinct, final read = n.
        let mut tickets: Vec<i64> =
            run.ops[..p.n].iter().filter_map(|o| o.ret.as_ref().and_then(Value::as_int)).collect();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..p.n as i64).collect::<Vec<_>>(), "{p:?}");
        assert_eq!(run.ops[p.n].ret, Some(Value::Int(p.n as i64)));
    }
}

#[test]
fn epsilon_zero_is_a_valid_degenerate_model() {
    // ε = 0 (perfect clocks): pure mutators ack instantly at X = 0; ties in
    // timestamps across processes are broken by pid and stay consistent.
    let p = ModelParams::new(3, Time(3000), Time(1000), Time::ZERO);
    let spec = erase(Register::new(0));
    let cfg = SimConfig::new(p, DelaySpec::AllMin).with_schedule(
        Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("write", 10))
            .at(Pid(1), Time(0), Invocation::new("write", 20))
            .at(Pid(2), Time(20_000), Invocation::nullary("read")),
    );
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(run.complete());
    assert_eq!(run.ops[0].latency(), Some(Time::ZERO)); // X + ε = 0
                                                        // Tie on timestamps → pid 1 is larger → its write orders last.
    assert_eq!(run.ops[2].ret, Some(Value::Int(20)));
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}
