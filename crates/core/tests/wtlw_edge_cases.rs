//! Edge cases of Algorithm 1's timer discipline: early execution of mixed
//! operations, accessor-driven drains cancelling execute timers, and the
//! backdating semantics of accessor timestamps.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_core::wtlw::WtlwNode;
use lintime_sim::prelude::*;
use std::sync::Arc;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

#[test]
fn mixed_op_executed_early_by_a_later_timestamp_responds_once() {
    // p0's rmw (small timestamp) is drained by the execute timer of p1's
    // later-timestamped rmw when message timing makes p1's entry fire first
    // at p0. The response must happen exactly once and the pending Execute
    // timer for p0's own entry must be cancelled (no error, clean
    // quiescence).
    let p = params();
    let spec = erase(RmwRegister::new(0));
    // p0 invokes first; p1 slightly later, so ts(p0) < ts(p1). With AllMin
    // delays, p1's announce reaches p0 at t+1+3600 while p0's own add timer
    // fires at t+3600: both entries queue at p0, and whichever Execute fires
    // last drains both.
    let cfg = SimConfig::new(p, DelaySpec::AllMin).with_schedule(
        Schedule::new().at(Pid(0), Time(0), Invocation::new("rmw", 1)).at(
            Pid(1),
            Time(1),
            Invocation::new("rmw", 1),
        ),
    );
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(run.complete());
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert_eq!(run.ops[0].ret, Some(Value::Int(0)));
    assert_eq!(run.ops[1].ret, Some(Value::Int(1)));
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}

#[test]
fn accessor_drain_cancels_execute_timers() {
    // An AOP with a timestamp above a queued mutator executes it during its
    // drain; the mutator's own Execute timer must be cancelled, not fire
    // into an empty queue or double-execute.
    let p = params();
    let spec = erase(FifoQueue::new());
    let x = Time::ZERO;
    let (run, nodes) = {
        let spec2 = Arc::clone(&spec);
        lintime_sim::engine::simulate_full(
            &SimConfig::new(p, DelaySpec::AllMax).with_schedule(
                Schedule::new()
                    .at(Pid(1), Time(0), Invocation::new("enqueue", 9))
                    // p0's peek invoked so its respond (at +d) lands after the
                    // announce arrives (at d) but before p0's execute timer
                    // for the enqueue (at d + u + ε).
                    .at(Pid(0), Time(5), Invocation::nullary("peek")),
            ),
            move |pid| WtlwNode::new(pid, Arc::clone(&spec2), p, x),
        )
    };
    assert!(run.complete());
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    // The peek saw the enqueue (drained during respond).
    assert_eq!(run.ops[1].ret, Some(Value::Int(9)));
    // p0 executed exactly one mutator, exactly once.
    assert_eq!(nodes[0].executed(), 1);
    assert_eq!(nodes[0].mutator_log.len(), 1);
    // Its accessor log recorded the drain position.
    assert_eq!(nodes[0].accessor_log.len(), 1);
    assert_eq!(nodes[0].accessor_log[0].after, 1);
}

#[test]
fn backdated_accessor_excludes_younger_mutators() {
    // With X = d − ε, an accessor's timestamp is backdated by X; a mutator
    // invoked *just before* the accessor (but with a local timestamp above
    // the backdated one) must NOT be drained by it — the accessor reads the
    // older state, which is linearizable because the two overlap.
    let p = params();
    let x = p.d - p.epsilon;
    let spec = erase(Register::new(0));
    let cfg = SimConfig::new(p, DelaySpec::AllMin).with_schedule(
        Schedule::new()
            .at(Pid(1), Time(0), Invocation::new("write", 5))
            // Read invoked 10 ticks later: its backdated ts = 10 − 4200 < 0,
            // far below the write's ts = 0, so the drain excludes the write.
            .at(Pid(0), Time(10), Invocation::nullary("read")),
    );
    let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
    assert!(run.complete());
    // Read overlaps the write (write responds at X + ε = d) and returns the
    // old value.
    assert_eq!(run.ops[1].ret, Some(Value::Int(0)));
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());

    // Control: invoked after the write completes, the same read sees 5.
    let cfg = SimConfig::new(p, DelaySpec::AllMin).with_schedule(
        Schedule::new().at(Pid(1), Time(0), Invocation::new("write", 5)).at(
            Pid(0),
            p.d + Time(1),
            Invocation::nullary("read"),
        ),
    );
    let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
    assert_eq!(run.ops[1].ret, Some(Value::Int(5)));
}

#[test]
fn local_state_reflects_executed_mutators() {
    let p = params();
    let spec = erase(FifoQueue::new());
    let spec2 = Arc::clone(&spec);
    let (run, nodes) = lintime_sim::engine::simulate_full(
        &SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("enqueue", 1)).at(
                Pid(1),
                Time(2),
                Invocation::new("enqueue", 2),
            ),
        ),
        move |pid| WtlwNode::new(pid, Arc::clone(&spec2), p, Time::ZERO),
    );
    assert!(run.complete());
    // After quiescence every replica holds [1, 2].
    let expect = Value::list([Value::Int(1), Value::Int(2)]);
    for (i, node) in nodes.iter().enumerate() {
        assert_eq!(node.local_state(), expect, "replica {i}");
        assert_eq!(node.executed(), 2, "replica {i}");
    }
}
