//! Crash-tolerant majority-quorum replicated state machine for **arbitrary**
//! data types, generalizing the Mostéfaoui–Raynal register construction
//! ([`crate::mr_register`], arXiv:1601.04820) from one overwritable value to
//! a timestamp-ordered operation log, with the communication-cost lens of
//! Nataf & Moses (arXiv:2604.05862).
//!
//! Every process is both a *client* and a *replica* holding a log
//! `ts → invocation` keyed by the paper's `(local time, pid)` timestamps
//! ([`crate::timestamp::Timestamp`]); replicas agree on the object state by
//! replaying the log in timestamp order. Unlike the register — where the
//! highest-timestamped value alone determines the state — a state machine's
//! responses depend on *every* logged prefix entry, so the protocol combines
//! quorum intersection (for real-time order) with a clock-driven *stability*
//! wait (for gap-free prefixes):
//!
//! * **Logged operations** (pure mutators and mixed ops) are two-phase:
//!   phase 1 queries a majority for the highest log timestamp, then the
//!   client picks `ts = (max(invoke clock, quorum max + 1), pid)` — at once
//!   fresher than every committed op it must follow and no older than its own
//!   invocation — logs the op locally, and broadcasts the commit to **all**
//!   replicas; phase 2 completes when a majority acks. A *pure mutator*
//!   responds right away (its response carries no state information):
//!   worst-case `4d`, `4(n−1)` messages. A *mixed* op (CAS, dequeue, pop)
//!   additionally waits until its position is **stable** before replaying its
//!   prefix for the response value.
//! * **Pure accessors** are not logged: one round trip asks a majority for
//!   their log maximum, which fixes the *cut* the accessor reads at. When
//!   every reply agrees on the maximum (the quorums overlap cleanly) the
//!   accessor responds directly after the stability wait — the `2d` fast
//!   path in quiescent periods. Disagreeing replies force a write-back of
//!   the local prefix to a majority first, so a later read can never observe
//!   an older cut.
//!
//! **Stability.** A log prefix up to timestamp `c` is final once the local
//! clock passes `c.time + Δ` with `Δ = 3d + ε + 1`: an op with `ts.time ≤
//! c.time` was invoked at a local clock `≤ ts.time`, its commit broadcast
//! leaves within `2d` (one phase-1 round trip), arrives within `d` more, and
//! local clocks disagree by at most `ε` — so past `Δ`, no commit can still
//! sneak under the cut (`+1` breaks the tie with the engine's
//! deliveries-before-timers ordering). This is why the backend tolerates
//! crashes and duplication but **not stalls**: a stalled client's delayed
//! commit broadcast violates the delivery bound Δ rests on.
//!
//! Quorum counting is crash- and duplicate-safe exactly as in the register:
//! every phase tracks the *set* of processes heard from, commits and syncs
//! are idempotent (the log is keyed by timestamp), and any `⌊(n−1)/2⌋`
//! crashes leave a live majority to answer every phase.

use crate::timestamp::Timestamp;
use lintime_adt::spec::{Invocation, ObjectSpec, OpClass};
use lintime_adt::value::Value;
use lintime_obs::{EventCategory, Obs};
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::{ModelParams, Pid, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Messages of the quorum state machine. `rid` is the client's per-operation
/// request id; replies carrying a stale `rid` are discarded.
#[derive(Clone, Debug, PartialEq)]
pub enum QsmMsg {
    /// Phase 1 (both logged ops and accessors): what is the highest log
    /// timestamp you hold?
    MaxQuery {
        /// Requesting operation id.
        rid: u64,
    },
    /// Reply to [`QsmMsg::MaxQuery`]; `None` for an empty log.
    MaxReply {
        /// Echoed operation id.
        rid: u64,
        /// The replica's highest log timestamp, if any.
        ts: Option<Timestamp>,
    },
    /// Commit a logged operation at `ts` (sent to **all** replicas). The
    /// replica inserts it and acks; insertion is idempotent.
    Commit {
        /// Requesting operation id.
        rid: u64,
        /// The operation's log position.
        ts: Timestamp,
        /// The operation itself.
        inv: Invocation,
    },
    /// An accessor's write-back of its log prefix (the read slow path). The
    /// replica merges the entries and acks.
    Sync {
        /// Requesting operation id.
        rid: u64,
        /// Log entries up to the accessor's cut.
        entries: Vec<(Timestamp, Invocation)>,
    },
    /// Acknowledgement of a [`QsmMsg::Commit`] or [`QsmMsg::Sync`].
    Ack {
        /// Echoed operation id.
        rid: u64,
    },
}

impl QsmMsg {
    /// Estimated serialized size in bytes: tag + 8-byte `rid`, plus the
    /// variant payload (a timestamp is 12 bytes: 8-byte time + 4-byte pid).
    /// `Sync` grows with the prefix it ships — the honest cost of reading a
    /// state machine rather than a register.
    pub fn wire_bytes(&self) -> usize {
        9 + match self {
            QsmMsg::MaxQuery { .. } | QsmMsg::Ack { .. } => 0,
            QsmMsg::MaxReply { ts, .. } => 1 + if ts.is_some() { 12 } else { 0 },
            QsmMsg::Commit { inv, .. } => 12 + inv.wire_bytes(),
            QsmMsg::Sync { entries, .. } => {
                2 + entries.iter().map(|(_, inv)| 12 + inv.wire_bytes()).sum::<usize>()
            }
        }
    }
}

/// Timers of the quorum state machine: the stability wait for the operation
/// with the given request id.
#[derive(Clone, Debug, PartialEq)]
pub enum QsmTimer {
    /// The pending operation's prefix becomes stable at this firing.
    Stable {
        /// The operation the wait belongs to; stale ids are ignored.
        rid: u64,
    },
}

/// Client-side progress of the operation pending at this process. Each
/// phase records the set of processes heard from (including this one);
/// sets, not counters, so duplicated replies cannot inflate a quorum.
enum Phase {
    Idle,
    /// Logged-op phase 1: collecting log maxima to pick a timestamp.
    Acquire {
        inv: Invocation,
        invoked_at: Time,
        qmax: Option<Timestamp>,
        heard: BTreeSet<Pid>,
    },
    /// Logged-op phase 2: collecting commit acks. `pure_ret` is the
    /// state-independent response for pure mutators (`None` for mixed ops,
    /// which replay their prefix at response time); `stable` tracks the
    /// stability wait (always true for pure mutators).
    Commit {
        ts: Timestamp,
        pure_ret: Option<Value>,
        acks: BTreeSet<Pid>,
        stable: bool,
    },
    /// Accessor phase 1: collecting log maxima to fix the cut. `uniform`
    /// stays true while every reply agrees on the maximum.
    Read {
        inv: Invocation,
        cut: Option<Timestamp>,
        uniform: bool,
        heard: BTreeSet<Pid>,
    },
    /// Accessor waiting for its cut to become stable (timer-driven).
    ReadWait {
        inv: Invocation,
        cut: Option<Timestamp>,
        uniform: bool,
    },
    /// Accessor slow path: writing the prefix back before responding.
    ReadSync {
        inv: Invocation,
        cut: Option<Timestamp>,
        acks: BTreeSet<Pid>,
    },
}

/// Pre-registered `qsm.*` metric handles (see [`QsmNode::with_obs`]).
struct QsmMetrics {
    round_trips: lintime_obs::Counter,
    fast_reads: lintime_obs::Counter,
    read_writebacks: lintime_obs::Counter,
    stability_waits: lintime_obs::Counter,
}

impl QsmMetrics {
    fn register(obs: &Obs) -> QsmMetrics {
        let r = &obs.metrics;
        QsmMetrics {
            round_trips: r.counter("qsm.quorum_round_trips"),
            fast_reads: r.counter("qsm.fast_reads"),
            read_writebacks: r.counter("qsm.read_writebacks"),
            stability_waits: r.counter("qsm.stability_waits"),
        }
    }
}

/// One process of the quorum state machine: the replica log plus the client
/// state machine for its own pending operation.
pub struct QsmNode {
    pid: Pid,
    n: usize,
    spec: Arc<dyn ObjectSpec>,
    /// Stability margin `Δ = 3d + ε + 1`.
    delta: Time,
    /// Replica state: committed operations in timestamp order.
    log: BTreeMap<Timestamp, Invocation>,
    /// Client state.
    rid: u64,
    phase: Phase,
    /// Completed quorum round trips (each phase of each operation is one).
    round_trips: u64,
    /// Accessors that responded without a write-back.
    fast_reads: u64,
    /// Accessors that needed the write-back slow path.
    read_writebacks: u64,
    /// Operations that had to sit out a stability timer.
    stability_waits: u64,
    obs: Obs,
    metrics: Option<QsmMetrics>,
}

impl QsmNode {
    /// Build a node. Works for **any** [`ObjectSpec`] — the log replays the
    /// erased object, so nothing type-specific is assumed.
    pub fn new(pid: Pid, spec: Arc<dyn ObjectSpec>, params: ModelParams) -> Self {
        QsmNode {
            pid,
            n: params.n,
            spec,
            delta: Time(3 * params.d.as_ticks() + params.epsilon.as_ticks() + 1),
            log: BTreeMap::new(),
            rid: 0,
            phase: Phase::Idle,
            round_trips: 0,
            fast_reads: 0,
            read_writebacks: 0,
            stability_waits: 0,
            obs: Obs::off(),
            metrics: None,
        }
    }

    /// Attach an observability bundle: round trips, fast reads, write-backs,
    /// and stability waits become `qsm.*` counters and trace events.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.metrics = obs.is_active().then(|| QsmMetrics::register(&obs));
        self.obs = obs;
        self
    }

    /// Majority quorum size `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Completed quorum round trips at this node.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// Accessors that completed without a write-back.
    pub fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    /// Accessors that needed the write-back slow path.
    pub fn read_writebacks(&self) -> u64 {
        self.read_writebacks
    }

    /// Operations that waited on a stability timer before responding.
    pub fn stability_waits(&self) -> u64 {
        self.stability_waits
    }

    /// Committed log entries held at this replica.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    fn log_max(&self) -> Option<Timestamp> {
        self.log.keys().next_back().copied()
    }

    fn count_round_trip(&mut self) {
        self.round_trips += 1;
        if let Some(m) = &self.metrics {
            m.round_trips.inc();
        }
    }

    /// A fresh phase quorum with the local replica already counted.
    fn heard_self(&self) -> BTreeSet<Pid> {
        let mut heard = BTreeSet::new();
        heard.insert(self.pid);
        heard
    }

    /// Whether a prefix up to `cut` is already final at local time `now`.
    /// With `n = 1` there are no other writers, so every prefix is final.
    fn stable_at(&self, cut: Option<Timestamp>, now: Time) -> bool {
        match cut {
            None => true,
            Some(c) => self.n == 1 || now >= c.time + self.delta,
        }
    }

    /// Start the stability timer for the current operation and count the
    /// wait. Only called when [`QsmNode::stable_at`] is false, so the due
    /// time is in the local future.
    fn start_stability_timer(&mut self, cut: Timestamp, fx: &mut Effects<QsmMsg, QsmTimer>) {
        self.stability_waits += 1;
        if let Some(m) = &self.metrics {
            m.stability_waits.inc();
        }
        fx.set_timer_at(cut.time + self.delta, QsmTimer::Stable { rid: self.rid });
    }

    /// Replay the log prefix `≤ ts` on a fresh object and return the
    /// response of the entry at `ts` (the caller's own logged op). Sound
    /// only once the prefix is stable.
    fn replay_ret(&self, ts: Timestamp) -> Value {
        let mut obj = self.spec.new_object();
        let mut ret = Value::Unit;
        for (t, inv) in self.log.range(..=ts) {
            ret = obj.apply(inv.op, &inv.arg);
            debug_assert!(*t <= ts);
        }
        ret
    }

    /// Replay the log prefix `≤ cut`, then apply the (unlogged) accessor on
    /// top and return its response. Sound only once the prefix is stable.
    fn accessor_ret(&self, inv: &Invocation, cut: Option<Timestamp>) -> Value {
        let mut obj = self.spec.new_object();
        if let Some(cut) = cut {
            for (_, entry) in self.log.range(..=cut) {
                obj.apply(entry.op, &entry.arg);
            }
        }
        obj.apply(inv.op, &inv.arg)
    }

    /// Finish an accessor whose cut is stable: respond directly when the
    /// quorum was uniform, otherwise write the prefix back to a majority
    /// first so no later read can observe an older cut.
    fn finish_read(
        &mut self,
        inv: Invocation,
        cut: Option<Timestamp>,
        uniform: bool,
        fx: &mut Effects<QsmMsg, QsmTimer>,
    ) {
        if uniform {
            self.fast_reads += 1;
            if let Some(m) = &self.metrics {
                m.fast_reads.inc();
            }
            let ret = self.accessor_ret(&inv, cut);
            fx.respond(ret);
            return;
        }
        self.read_writebacks += 1;
        if let Some(m) = &self.metrics {
            m.read_writebacks.inc();
        }
        self.obs.emit(fx.local_time().as_ticks(), Some(self.pid.0), EventCategory::Send, || {
            format!("read write-back of prefix ≤ {cut:?} before responding")
        });
        let entries: Vec<_> = match cut {
            Some(c) => self.log.range(..=c).map(|(t, i)| (*t, i.clone())).collect(),
            None => Vec::new(),
        };
        self.phase = Phase::ReadSync { inv, cut, acks: self.heard_self() };
        fx.broadcast(QsmMsg::Sync { rid: self.rid, entries });
        self.advance(fx);
    }

    /// Drive the client state machine: whenever the current phase has heard
    /// a majority (and, where required, reached stability), finish it and
    /// start the next (or respond). A loop rather than recursion — with
    /// `n = 1` every quorum is immediately satisfied and an operation falls
    /// straight through its phases.
    fn advance(&mut self, fx: &mut Effects<QsmMsg, QsmTimer>) {
        loop {
            let q = self.quorum();
            let ready = match &self.phase {
                Phase::Acquire { heard, .. } | Phase::Read { heard, .. } => heard.len() >= q,
                Phase::Commit { acks, stable, .. } => acks.len() >= q && *stable,
                Phase::ReadSync { acks, .. } => acks.len() >= q,
                // Timer-driven: `on_timer` re-enters the machine.
                Phase::ReadWait { .. } | Phase::Idle => false,
            };
            if !ready {
                return;
            }
            let now = fx.local_time();
            match std::mem::replace(&mut self.phase, Phase::Idle) {
                Phase::Idle | Phase::ReadWait { .. } => unreachable!("ready implies a live phase"),
                Phase::Acquire { inv, invoked_at, qmax, .. } => {
                    self.count_round_trip();
                    // Fresher than everything the quorum has committed, no
                    // older than the invocation: both real-time directions of
                    // the log order rest on this choice.
                    let time = match qmax {
                        Some(m) => invoked_at.max(m.time + Time(1)),
                        None => invoked_at,
                    };
                    let ts = Timestamp::new(time, self.pid);
                    self.log.insert(ts, inv.clone());
                    let mixed =
                        self.spec.op_meta(inv.op).is_none_or(|m| m.class != OpClass::PureMutator);
                    // A pure mutator's response is state-independent: read it
                    // off a fresh object now. Mixed ops replay their stable
                    // prefix when responding.
                    let pure_ret = (!mixed).then(|| self.spec.new_object().apply(inv.op, &inv.arg));
                    let stable = !mixed || self.stable_at(Some(ts), now);
                    if !stable {
                        self.start_stability_timer(ts, fx);
                    }
                    self.phase = Phase::Commit { ts, pure_ret, acks: self.heard_self(), stable };
                    fx.broadcast(QsmMsg::Commit { rid: self.rid, ts, inv });
                }
                Phase::Commit { ts, pure_ret, .. } => {
                    self.count_round_trip();
                    let ret = match pure_ret {
                        Some(v) => v,
                        None => self.replay_ret(ts),
                    };
                    fx.respond(ret);
                    return;
                }
                Phase::Read { inv, cut, uniform, .. } => {
                    self.count_round_trip();
                    if self.stable_at(cut, now) {
                        self.finish_read(inv, cut, uniform, fx);
                    } else {
                        let c = cut.expect("unstable cut is a concrete timestamp");
                        self.start_stability_timer(c, fx);
                        self.phase = Phase::ReadWait { inv, cut, uniform };
                    }
                    return;
                }
                Phase::ReadSync { inv, cut, .. } => {
                    self.count_round_trip();
                    let ret = self.accessor_ret(&inv, cut);
                    fx.respond(ret);
                    return;
                }
            }
        }
    }
}

impl Node for QsmNode {
    type Msg = QsmMsg;
    type Timer = QsmTimer;

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<QsmMsg, QsmTimer>) {
        assert!(
            matches!(self.phase, Phase::Idle),
            "one operation at a time per process (engine enforces this)"
        );
        self.rid += 1;
        let accessor = self.spec.op_meta(inv.op).is_some_and(|m| m.class == OpClass::PureAccessor);
        if accessor {
            self.phase =
                Phase::Read { inv, cut: self.log_max(), uniform: true, heard: self.heard_self() };
        } else {
            // Mutators and mixed ops are logged; unknown operations are
            // conservatively treated as mixed.
            self.phase = Phase::Acquire {
                inv,
                invoked_at: fx.local_time(),
                qmax: self.log_max(),
                heard: self.heard_self(),
            };
        }
        fx.broadcast(QsmMsg::MaxQuery { rid: self.rid });
        // n = 1 (or tiny clusters): the local replica may already be a
        // majority on its own.
        self.advance(fx);
    }

    fn on_deliver(&mut self, from: Pid, msg: QsmMsg, fx: &mut Effects<QsmMsg, QsmTimer>) {
        match msg {
            // Replica duties: answer queries, adopt commits and syncs,
            // always ack.
            QsmMsg::MaxQuery { rid } => {
                let ts = self.log_max();
                fx.send(from, QsmMsg::MaxReply { rid, ts });
            }
            QsmMsg::Commit { rid, ts, inv } => {
                self.log.insert(ts, inv);
                fx.send(from, QsmMsg::Ack { rid });
            }
            QsmMsg::Sync { rid, entries } => {
                for (ts, inv) in entries {
                    self.log.insert(ts, inv);
                }
                fx.send(from, QsmMsg::Ack { rid });
            }
            // Client-side replies: discarded unless they carry the current
            // operation id *and* fit the current phase.
            QsmMsg::MaxReply { rid, ts } if rid == self.rid => match &mut self.phase {
                // Not collapsible into pattern guards: `heard.insert` must
                // mutate, and guards only get immutable access.
                #[allow(clippy::collapsible_match)]
                Phase::Acquire { qmax, heard, .. } => {
                    if heard.insert(from) {
                        *qmax = (*qmax).max(ts);
                        self.advance(fx);
                    }
                }
                #[allow(clippy::collapsible_match)]
                Phase::Read { cut, uniform, heard, .. } => {
                    if heard.insert(from) {
                        if ts != *cut {
                            *uniform = false;
                        }
                        if ts > *cut {
                            *cut = ts;
                        }
                        self.advance(fx);
                    }
                }
                _ => {}
            },
            QsmMsg::Ack { rid } if rid == self.rid => {
                if let Phase::Commit { acks, .. } | Phase::ReadSync { acks, .. } = &mut self.phase {
                    if acks.insert(from) {
                        self.advance(fx);
                    }
                }
            }
            // Stale replies from an already-completed operation.
            QsmMsg::MaxReply { .. } | QsmMsg::Ack { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: QsmTimer, fx: &mut Effects<QsmMsg, QsmTimer>) {
        let QsmTimer::Stable { rid } = timer;
        if rid != self.rid {
            return; // stale timer from a completed operation
        }
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Commit { ts, pure_ret, acks, .. } => {
                self.phase = Phase::Commit { ts, pure_ret, acks, stable: true };
                self.advance(fx);
            }
            Phase::ReadWait { inv, cut, uniform } => {
                self.finish_read(inv, cut, uniform, fx);
            }
            other => self.phase = other,
        }
    }

    fn msg_wire_bytes(msg: &QsmMsg) -> usize {
        msg.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::{Counter, FifoQueue, KvStore};
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, simulate_full, SimConfig};
    use lintime_sim::faults::FaultPlan;
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::ModelParams;

    fn params5() -> ModelParams {
        ModelParams::new(5, Time(6000), Time(2400), Time(1800))
    }

    fn mk(spec: &Arc<dyn ObjectSpec>, p: ModelParams) -> impl FnMut(Pid) -> QsmNode + '_ {
        move |pid| QsmNode::new(pid, Arc::clone(spec), p)
    }

    #[test]
    fn mutator_and_accessor_latencies() {
        let p = params5();
        let spec = erase(Counter::new());
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::nullary("increment")).at(
                Pid(1),
                Time(200_000),
                Invocation::nullary("read"),
            ),
        );
        let (run, nodes) = simulate_full(&cfg, mk(&spec, p));
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        // Pure mutator: two quorum round trips of d each way = 4d.
        assert_eq!(run.ops[0].latency(), Some(p.d * 4));
        // Quiescent accessor: uniform maxima, stable cut, one round trip.
        assert_eq!(run.ops[1].latency(), Some(p.d * 2));
        assert_eq!(run.ops[1].ret, Some(Value::Int(1)));
        assert_eq!(nodes[1].fast_reads(), 1);
        assert_eq!(nodes[1].read_writebacks(), 0);
        assert_eq!(nodes[0].round_trips(), 2);
    }

    #[test]
    fn mixed_op_replays_its_stable_prefix() {
        let p = params5();
        let spec = erase(Counter::new());
        // increment commits first; the later fetch_inc must observe it and
        // return the pre-increment... post-increment value 1.
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::nullary("increment"))
                .at(Pid(1), Time(200_000), Invocation::nullary("fetch_inc"))
                .at(Pid(2), Time(400_000), Invocation::nullary("read")),
        );
        let run = simulate(&cfg, mk(&spec, p));
        assert!(run.complete(), "{run}");
        // fetch_inc returns the value before its own increment: 1.
        assert_eq!(run.ops[1].ret, Some(Value::Int(1)));
        // With Δ = 3d + ε + 1 < 4d the stability wait hides inside the ack
        // round trip: mixed ops still cost 4d.
        assert_eq!(run.ops[1].latency(), Some(p.d * 4));
        assert_eq!(run.ops[2].ret, Some(Value::Int(2)));
    }

    #[test]
    fn queue_stays_fifo_across_processes() {
        let p = params5();
        let spec = erase(FifoQueue::new());
        let mut sched = Schedule::new();
        for i in 0..3i64 {
            sched = sched.at(Pid(i as usize), Time(i * 100_000), Invocation::new("enqueue", i));
        }
        for i in 0..3i64 {
            sched = sched.at(Pid(3), Time(400_000 + i * 100_000), Invocation::nullary("dequeue"));
        }
        let run = simulate(&cfg_for(p, sched), mk(&spec, p));
        assert!(run.complete(), "{run}");
        let dequeued: Vec<_> = run
            .ops
            .iter()
            .filter(|o| o.invocation.op == "dequeue")
            .map(|o| o.ret.clone().unwrap())
            .collect();
        assert_eq!(dequeued, vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
    }

    fn cfg_for(p: ModelParams, sched: Schedule) -> SimConfig {
        SimConfig::new(p, DelaySpec::AllMax).with_schedule(sched)
    }

    #[test]
    fn survives_minority_crashes_on_a_queue() {
        let p = params5();
        let spec = erase(FifoQueue::new());
        // Two of five replicas crash before the workload starts: majorities
        // of the three survivors must still commit every op.
        let plan = FaultPlan::new(11).crash(Pid(3), Time(1)).crash(Pid(4), Time(1));
        let sched = Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("enqueue", 7))
            .at(Pid(1), Time(200_000), Invocation::nullary("dequeue"))
            .at(Pid(2), Time(400_000), Invocation::nullary("peek"));
        let cfg = cfg_for(p, sched).with_faults(plan);
        let run = simulate(&cfg, mk(&spec, p));
        assert!(run.complete(), "a majority is alive, every op must finish: {run}");
        assert!(!run.truncated);
        assert_eq!(run.ops[1].ret, Some(Value::Int(7)));
        // The queue is empty again: peek sees nothing.
        assert_eq!(run.ops[2].ret, Some(Value::Unit));
        assert_eq!(run.crashed_pending, 0);
    }

    #[test]
    fn majority_crash_blocks_instead_of_lying() {
        let p = params5();
        let spec = erase(Counter::new());
        let plan =
            FaultPlan::new(11).crash(Pid(2), Time(1)).crash(Pid(3), Time(1)).crash(Pid(4), Time(1));
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(plan)
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::nullary("increment")));
        let run = simulate(&cfg, mk(&spec, p));
        assert!(!run.complete());
        assert_eq!(run.pending().count(), 1);
    }

    #[test]
    fn duplicated_replies_cannot_fake_a_quorum() {
        let p = params5();
        let spec = erase(FifoQueue::new());
        let plan =
            FaultPlan::new(5).crash(Pid(3), Time(1)).crash(Pid(4), Time(1)).duplicate_all(1.0);
        let sched = Schedule::new().at(Pid(0), Time(0), Invocation::new("enqueue", 9)).at(
            Pid(1),
            Time(200_000),
            Invocation::nullary("dequeue"),
        );
        let cfg = cfg_for(p, sched).with_faults(plan);
        let run = simulate(&cfg, mk(&spec, p));
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[1].ret, Some(Value::Int(9)));
    }

    #[test]
    fn kv_workload_round_trips() {
        let p = params5();
        let spec = erase(KvStore::new());
        let sched = Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("put", Value::pair(1, 10)))
            .at(Pid(1), Time(200_000), Invocation::new("get", 1))
            .at(Pid(2), Time(200_000), Invocation::new("get", 2))
            .at(Pid(0), Time(400_000), Invocation::new("del", 1))
            .at(Pid(1), Time(600_000), Invocation::new("get", 1));
        let run = simulate(&cfg_for(p, sched), mk(&spec, p));
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[1].ret, Some(Value::Int(10)));
        assert_eq!(run.ops[2].ret, Some(Value::Unit));
        assert_eq!(run.ops[4].ret, Some(Value::Unit));
    }

    #[test]
    fn concurrent_mutators_agree_on_one_order() {
        let p = params5();
        let spec = erase(FifoQueue::new());
        // All five enqueue concurrently, then two processes drain: the two
        // observed orders must agree (same committed log everywhere).
        let mut sched = Schedule::new();
        for i in 0..5i64 {
            sched = sched.at(Pid(i as usize), Time(10 * i), Invocation::new("enqueue", 10 + i));
        }
        for k in 0..5i64 {
            sched = sched.at(Pid(0), Time(400_000 + 100_000 * k), Invocation::nullary("peek"));
            sched = sched.at(Pid(1), Time(450_000 + 100_000 * k), Invocation::nullary("dequeue"));
        }
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 9 }).with_schedule(sched);
        let run = simulate(&cfg, mk(&spec, p));
        assert!(run.complete(), "{run}");
        // Each peek must see exactly the element the following dequeue pops.
        let peeks: Vec<_> = run
            .ops
            .iter()
            .filter(|o| o.invocation.op == "peek")
            .map(|o| o.ret.clone().unwrap())
            .collect();
        let deqs: Vec<_> = run
            .ops
            .iter()
            .filter(|o| o.invocation.op == "dequeue")
            .map(|o| o.ret.clone().unwrap())
            .collect();
        assert_eq!(peeks, deqs, "{run}");
    }

    #[test]
    fn single_process_cluster_is_its_own_quorum() {
        // The engine requires n ≥ 2, so drive the node handlers directly:
        // with n = 1 the local replica alone is a majority, stability is
        // trivial, and ops complete inside `on_invoke` with no messages.
        let p = ModelParams { n: 1, d: Time(6000), u: Time(2400), epsilon: Time(1800) };
        let spec = erase(FifoQueue::new());
        let mut node = QsmNode::new(Pid(0), Arc::clone(&spec), p);

        let mut fx = Effects::new(Pid(0), 1, Time(0));
        node.on_invoke(Invocation::new("enqueue", 3), &mut fx);
        let parts = fx.into_parts();
        assert!(parts.sends.is_empty());
        assert_eq!(parts.response, Some(Value::Unit));

        let mut fx = Effects::new(Pid(0), 1, Time(10));
        node.on_invoke(Invocation::nullary("dequeue"), &mut fx);
        let parts = fx.into_parts();
        assert!(parts.sends.is_empty());
        assert_eq!(parts.response, Some(Value::Int(3)));

        let mut fx = Effects::new(Pid(0), 1, Time(20));
        node.on_invoke(Invocation::nullary("peek"), &mut fx);
        assert_eq!(fx.into_parts().response, Some(Value::Unit));
    }

    #[test]
    fn observed_node_counts_quorum_metrics() {
        let p = params5();
        let spec = erase(Counter::new());
        let (obs, _ring) = Obs::ring(1024);
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_schedule(
                Schedule::new().at(Pid(0), Time(0), Invocation::nullary("increment")).at(
                    Pid(1),
                    Time(200_000),
                    Invocation::nullary("read"),
                ),
            )
            .with_obs(obs.clone());
        let run =
            simulate(&cfg, |pid| QsmNode::new(pid, Arc::clone(&spec), p).with_obs(cfg.obs.clone()));
        assert!(run.complete());
        // Mutator = 2 round trips, fast read = 1.
        assert_eq!(obs.metrics.counter("qsm.quorum_round_trips").get(), 3);
        assert_eq!(obs.metrics.counter("qsm.fast_reads").get(), 1);
        assert_eq!(obs.metrics.counter("qsm.read_writebacks").get(), 0);
    }

    #[test]
    fn commit_bytes_account_the_invocation() {
        let inv = Invocation::new("enqueue", 7);
        let commit = QsmMsg::Commit { rid: 1, ts: Timestamp::new(Time(5), Pid(0)), inv };
        assert!(commit.wire_bytes() > QsmMsg::Ack { rid: 1 }.wire_bytes());
        let sync = QsmMsg::Sync {
            rid: 1,
            entries: vec![
                (Timestamp::new(Time(5), Pid(0)), Invocation::new("enqueue", 7)),
                (Timestamp::new(Time(6), Pid(1)), Invocation::new("enqueue", 8)),
            ],
        };
        // Sync cost grows with the prefix it ships.
        assert!(sync.wire_bytes() > commit.wire_bytes());
    }
}
