//! Uniform driver for every implementation in this crate: pick an
//! [`Algorithm`], a data type, and a [`SimConfig`], get a recorded run and
//! per-class latency statistics. Used by the table binaries and benches.

use crate::abd_kv::{AbdKvNode, AbdMsg};
use crate::batch::{BatchMsg, BatchTimer, BatchWtlwNode};
use crate::broadcast::{BcastMsg, BroadcastNode};
use crate::centralized::{CentralMsg, CentralizedNode};
use crate::mr_register::{MrMsg, MrNode};
use crate::naive::{NaiveLocalNode, NaiveMsg, NaiveTimer};
use crate::quorum_sm::{QsmMsg, QsmNode, QsmTimer};
use crate::reliable::{RecoveryConfig, RelMsg, RelTimer, ReliableWtlwNode};
use crate::wtlw::{Waits, WtlwMsg, WtlwNode, WtlwTimer};
use lintime_adt::spec::{Invocation, ObjectSpec, OpClass};
use lintime_obs::Obs;
use lintime_sim::engine::SimConfig;
use lintime_sim::node::{Effects, Node};
use lintime_sim::run::Run;
use lintime_sim::time::{Pid, Time};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which shared-object implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's Algorithm 1 with tradeoff parameter `X`.
    Wtlw {
        /// Tradeoff parameter `X ∈ [0, d − ε]`.
        x: Time,
    },
    /// Algorithm 1 with explicit (possibly incorrect) timer durations.
    WtlwWaits(Waits),
    /// Folklore baseline 1: centralized coordinator (≈ `2d`).
    Centralized,
    /// Folklore baseline 2: Lamport total-order broadcast (≈ `2d`).
    Broadcast,
    /// Majority-quorum read/write register (Mostéfaoui–Raynal style):
    /// crash-tolerant up to `⌊(n−1)/2⌋` failures.
    MrRegister,
    /// Majority-quorum replicated state machine over a timestamp-ordered
    /// operation log: crash-tolerant up to `⌊(n−1)/2⌋` failures for
    /// **arbitrary** data types.
    QuorumSm,
    /// Per-key composition of majority-quorum registers implementing the
    /// kv-store at register cost; crash-tolerant up to `⌊(n−1)/2⌋` failures.
    AbdKv,
    /// Algorithm 1 behind the tick-batching wrapper: mutator announcements
    /// flush once per batch tick, trading `+tick` of accessor/mixed latency
    /// for one broadcast per tick instead of one per operation.
    BatchedWtlw {
        /// Tradeoff parameter `X ∈ [0, d − ε]` for the inner node.
        x: Time,
        /// Batch tick `B` (0 disables batching).
        tick: Time,
    },
    /// Algorithm 1 behind the reliable-delivery recovery wrapper.
    ReliableWtlw {
        /// Tradeoff parameter `X ∈ [0, d − ε]` for the inner node.
        x: Time,
        /// Retransmission/detection policy.
        recovery: RecoveryConfig,
    },
    /// Incorrect optimistic replication responding after the given wait.
    NaiveLocal(Time),
}

impl Algorithm {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Algorithm::Wtlw { x } => format!("wtlw(X={x})"),
            Algorithm::WtlwWaits(_) => "wtlw(custom waits)".to_string(),
            Algorithm::Centralized => "centralized".to_string(),
            Algorithm::Broadcast => "broadcast".to_string(),
            Algorithm::MrRegister => "mr-register".to_string(),
            Algorithm::QuorumSm => "quorum-sm".to_string(),
            Algorithm::AbdKv => "abd-kv".to_string(),
            Algorithm::BatchedWtlw { x, tick } => format!("batched-wtlw(X={x}, B={tick})"),
            Algorithm::ReliableWtlw { x, .. } => format!("reliable-wtlw(X={x})"),
            Algorithm::NaiveLocal(w) => format!("naive(wait={w})"),
        }
    }
}

/// Unified message type for [`AnyNode`].
#[derive(Clone, Debug, PartialEq)]
pub enum AnyMsg {
    /// Algorithm 1 announcement.
    Wtlw(WtlwMsg),
    /// Centralized request/reply.
    Central(CentralMsg),
    /// Broadcast-baseline message.
    Bcast(BcastMsg),
    /// Quorum-register phase message.
    Mr(MrMsg),
    /// Quorum state-machine phase message.
    Qsm(QsmMsg),
    /// Per-key quorum kv-store phase message.
    Abd(AbdMsg),
    /// Recovery-wrapped announcement or acknowledgement.
    Rel(RelMsg),
    /// Tick-batched announcement bundle.
    Batch(BatchMsg),
    /// Naive gossip.
    Naive(NaiveMsg),
}

impl AnyMsg {
    /// Estimated serialized size in bytes: algorithm tag plus the inner
    /// message's own estimate.
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            AnyMsg::Wtlw(m) => m.wire_bytes(),
            AnyMsg::Central(m) => m.wire_bytes(),
            AnyMsg::Bcast(m) => m.wire_bytes(),
            AnyMsg::Mr(m) => m.wire_bytes(),
            AnyMsg::Qsm(m) => m.wire_bytes(),
            AnyMsg::Abd(m) => m.wire_bytes(),
            AnyMsg::Rel(m) => m.wire_bytes(),
            AnyMsg::Batch(m) => m.wire_bytes(),
            AnyMsg::Naive(m) => m.wire_bytes(),
        }
    }
}

/// Unified timer type for [`AnyNode`].
#[derive(Clone, Debug, PartialEq)]
pub enum AnyTimer {
    /// Algorithm 1 timer.
    Wtlw(WtlwTimer),
    /// Recovery-wrapper timer (inner Algorithm 1 or retransmit).
    Rel(RelTimer),
    /// Batching-wrapper timer (inner Algorithm 1 or flush).
    Batch(BatchTimer),
    /// Naive respond timer.
    Naive(NaiveTimer),
    /// Quorum state-machine stability timer.
    Qsm(QsmTimer),
}

/// A node of any of the supported algorithms, with unified message/timer
/// types so heterogeneous experiments share one engine instantiation.
pub enum AnyNode {
    /// Algorithm 1.
    Wtlw(WtlwNode),
    /// Centralized baseline.
    Central(CentralizedNode),
    /// Broadcast baseline.
    Bcast(BroadcastNode),
    /// Quorum register.
    Mr(MrNode),
    /// Quorum state machine.
    Qsm(QsmNode),
    /// Per-key quorum kv-store.
    Abd(AbdKvNode),
    /// Recovery-wrapped Algorithm 1.
    Rel(ReliableWtlwNode),
    /// Tick-batched Algorithm 1.
    Batch(BatchWtlwNode),
    /// Naive strawman.
    Naive(NaiveLocalNode),
}

impl AnyNode {
    /// Build a node of `algo` for process `pid` (works for both the
    /// simulator and the live runtime — only the model parameters matter).
    pub fn build(
        algo: Algorithm,
        pid: Pid,
        spec: Arc<dyn ObjectSpec>,
        params: lintime_sim::time::ModelParams,
    ) -> AnyNode {
        Self::build_observed(algo, pid, spec, params, &Obs::off())
    }

    /// [`AnyNode::build`] with an observability bundle attached to the
    /// algorithms that export metrics (quorum register, recovery wrapper).
    pub fn build_observed(
        algo: Algorithm,
        pid: Pid,
        spec: Arc<dyn ObjectSpec>,
        params: lintime_sim::time::ModelParams,
        obs: &Obs,
    ) -> AnyNode {
        match algo {
            Algorithm::Wtlw { x } => AnyNode::Wtlw(WtlwNode::new(pid, spec, params, x)),
            Algorithm::WtlwWaits(waits) => AnyNode::Wtlw(WtlwNode::with_waits(pid, spec, waits)),
            Algorithm::Centralized => AnyNode::Central(CentralizedNode::new(pid, spec)),
            Algorithm::Broadcast => AnyNode::Bcast(BroadcastNode::new(pid, params.n, spec)),
            Algorithm::MrRegister => {
                AnyNode::Mr(MrNode::new(pid, spec, params.n).with_obs(obs.clone()))
            }
            Algorithm::QuorumSm => {
                AnyNode::Qsm(QsmNode::new(pid, spec, params).with_obs(obs.clone()))
            }
            Algorithm::AbdKv => {
                AnyNode::Abd(AbdKvNode::new(pid, spec, params.n).with_obs(obs.clone()))
            }
            Algorithm::BatchedWtlw { x, tick } => {
                AnyNode::Batch(BatchWtlwNode::new(pid, spec, params, x, tick).with_obs(obs.clone()))
            }
            Algorithm::ReliableWtlw { x, recovery } => AnyNode::Rel(
                ReliableWtlwNode::new(pid, spec, params, x, recovery).with_obs(obs.clone()),
            ),
            Algorithm::NaiveLocal(wait) => AnyNode::Naive(NaiveLocalNode::new(spec, wait)),
        }
    }
}

/// Dispatch a handler call through the unified types.
macro_rules! dispatch {
    ($fx:ident, $inner:ident, $call:expr, $msg_var:expr, $tmr_var:expr) => {{
        let mut inner_fx = Effects::new($fx.pid(), $fx.n(), $fx.local_time());
        {
            let $inner = &mut inner_fx;
            $call;
        }
        $fx.absorb(inner_fx.into_parts(), $msg_var, $tmr_var);
    }};
}

impl Node for AnyNode {
    type Msg = AnyMsg;
    type Timer = AnyTimer;

    fn msg_wire_bytes(msg: &AnyMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<AnyMsg, AnyTimer>) {
        match self {
            AnyNode::Wtlw(n) => {
                dispatch!(fx, ifx, n.on_invoke(inv, ifx), AnyMsg::Wtlw, AnyTimer::Wtlw)
            }
            AnyNode::Central(n) => dispatch!(
                fx,
                ifx,
                n.on_invoke(inv, ifx),
                AnyMsg::Central,
                |t: crate::centralized::NoTimer| match t {}
            ),
            AnyNode::Bcast(n) => dispatch!(
                fx,
                ifx,
                n.on_invoke(inv, ifx),
                AnyMsg::Bcast,
                |t: crate::broadcast::NoTimer| match t {}
            ),
            AnyNode::Mr(n) => dispatch!(
                fx,
                ifx,
                n.on_invoke(inv, ifx),
                AnyMsg::Mr,
                |t: crate::mr_register::NoTimer| match t {}
            ),
            AnyNode::Qsm(n) => {
                dispatch!(fx, ifx, n.on_invoke(inv, ifx), AnyMsg::Qsm, AnyTimer::Qsm)
            }
            AnyNode::Abd(n) => dispatch!(
                fx,
                ifx,
                n.on_invoke(inv, ifx),
                AnyMsg::Abd,
                |t: crate::mr_register::NoTimer| match t {}
            ),
            AnyNode::Rel(n) => {
                dispatch!(fx, ifx, n.on_invoke(inv, ifx), AnyMsg::Rel, AnyTimer::Rel)
            }
            AnyNode::Batch(n) => {
                dispatch!(fx, ifx, n.on_invoke(inv, ifx), AnyMsg::Batch, AnyTimer::Batch)
            }
            AnyNode::Naive(n) => {
                dispatch!(fx, ifx, n.on_invoke(inv, ifx), AnyMsg::Naive, AnyTimer::Naive)
            }
        }
    }

    fn on_deliver(&mut self, from: Pid, msg: AnyMsg, fx: &mut Effects<AnyMsg, AnyTimer>) {
        match (self, msg) {
            (AnyNode::Wtlw(n), AnyMsg::Wtlw(m)) => {
                dispatch!(fx, ifx, n.on_deliver(from, m, ifx), AnyMsg::Wtlw, AnyTimer::Wtlw)
            }
            (AnyNode::Central(n), AnyMsg::Central(m)) => dispatch!(
                fx,
                ifx,
                n.on_deliver(from, m, ifx),
                AnyMsg::Central,
                |t: crate::centralized::NoTimer| match t {}
            ),
            (AnyNode::Bcast(n), AnyMsg::Bcast(m)) => dispatch!(
                fx,
                ifx,
                n.on_deliver(from, m, ifx),
                AnyMsg::Bcast,
                |t: crate::broadcast::NoTimer| match t {}
            ),
            (AnyNode::Mr(n), AnyMsg::Mr(m)) => dispatch!(
                fx,
                ifx,
                n.on_deliver(from, m, ifx),
                AnyMsg::Mr,
                |t: crate::mr_register::NoTimer| match t {}
            ),
            (AnyNode::Qsm(n), AnyMsg::Qsm(m)) => {
                dispatch!(fx, ifx, n.on_deliver(from, m, ifx), AnyMsg::Qsm, AnyTimer::Qsm)
            }
            (AnyNode::Abd(n), AnyMsg::Abd(m)) => dispatch!(
                fx,
                ifx,
                n.on_deliver(from, m, ifx),
                AnyMsg::Abd,
                |t: crate::mr_register::NoTimer| match t {}
            ),
            (AnyNode::Rel(n), AnyMsg::Rel(m)) => {
                dispatch!(fx, ifx, n.on_deliver(from, m, ifx), AnyMsg::Rel, AnyTimer::Rel)
            }
            (AnyNode::Batch(n), AnyMsg::Batch(m)) => {
                dispatch!(fx, ifx, n.on_deliver(from, m, ifx), AnyMsg::Batch, AnyTimer::Batch)
            }
            (AnyNode::Naive(n), AnyMsg::Naive(m)) => {
                dispatch!(fx, ifx, n.on_deliver(from, m, ifx), AnyMsg::Naive, AnyTimer::Naive)
            }
            _ => panic!("message type does not match node algorithm"),
        }
    }

    fn on_timer(&mut self, timer: AnyTimer, fx: &mut Effects<AnyMsg, AnyTimer>) {
        match (self, timer) {
            (AnyNode::Wtlw(n), AnyTimer::Wtlw(t)) => {
                dispatch!(fx, ifx, n.on_timer(t, ifx), AnyMsg::Wtlw, AnyTimer::Wtlw)
            }
            (AnyNode::Rel(n), AnyTimer::Rel(t)) => {
                dispatch!(fx, ifx, n.on_timer(t, ifx), AnyMsg::Rel, AnyTimer::Rel)
            }
            (AnyNode::Batch(n), AnyTimer::Batch(t)) => {
                dispatch!(fx, ifx, n.on_timer(t, ifx), AnyMsg::Batch, AnyTimer::Batch)
            }
            (AnyNode::Naive(n), AnyTimer::Naive(t)) => {
                dispatch!(fx, ifx, n.on_timer(t, ifx), AnyMsg::Naive, AnyTimer::Naive)
            }
            (AnyNode::Qsm(n), AnyTimer::Qsm(t)) => {
                dispatch!(fx, ifx, n.on_timer(t, ifx), AnyMsg::Qsm, AnyTimer::Qsm)
            }
            _ => panic!("timer type does not match node algorithm"),
        }
    }
}

/// Run `algo` over `spec` under `cfg`.
///
/// Delegates to [`crate::backend::run_backend`], so algorithm-level
/// bookkeeping (recovery-layer suspects folded into [`Run::suspect`],
/// quorum metrics) is applied uniformly no matter which entry point is used.
pub fn run_algorithm(algo: Algorithm, spec: &Arc<dyn ObjectSpec>, cfg: &SimConfig) -> Run {
    crate::backend::run_backend(&algo, spec, cfg).unwrap_or_else(|err| panic!("{err}")).run
}

/// Latency statistics for one operation name.
#[derive(Clone, Debug, PartialEq)]
pub struct OpStats {
    /// Operation name.
    pub op: &'static str,
    /// Declared class.
    pub class: OpClass,
    /// Number of completed instances.
    pub count: usize,
    /// Minimum latency.
    pub min: Time,
    /// Maximum latency.
    pub max: Time,
    /// Mean latency (ticks, rounded down).
    pub mean: Time,
}

/// Gather per-operation latency statistics from a run.
pub fn op_stats(run: &Run, spec: &Arc<dyn ObjectSpec>) -> Vec<OpStats> {
    let mut grouped: BTreeMap<&'static str, Vec<Time>> = BTreeMap::new();
    for op in run.completed() {
        if let Some(lat) = op.latency() {
            grouped.entry(op.invocation.op).or_default().push(lat);
        }
    }
    grouped
        .into_iter()
        .map(|(op, lats)| {
            let class = spec.op_meta(op).map(|m| m.class).unwrap_or(OpClass::Mixed);
            let min = lats.iter().copied().min().expect("non-empty");
            let max = lats.iter().copied().max().expect("non-empty");
            let sum: i64 = lats.iter().map(|t| t.as_ticks()).sum();
            OpStats { op, class, count: lats.len(), min, max, mean: Time(sum / lats.len() as i64) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::FifoQueue;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::ModelParams;

    fn queue_workload() -> Schedule {
        Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
            .at(Pid(1), Time(0), Invocation::new("enqueue", 2))
            .at(Pid(2), Time(40_000), Invocation::nullary("peek"))
            .at(Pid(3), Time(80_000), Invocation::nullary("dequeue"))
    }

    #[test]
    fn all_algorithms_complete_the_workload() {
        let p = ModelParams::default_experiment();
        let spec = erase(FifoQueue::new());
        for algo in [
            Algorithm::Wtlw { x: Time(600) },
            Algorithm::Centralized,
            Algorithm::Broadcast,
            Algorithm::NaiveLocal(Time::ZERO),
        ] {
            let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 1 })
                .with_schedule(queue_workload());
            let run = run_algorithm(algo, &spec, &cfg);
            assert!(run.complete(), "{} did not complete: {run}", algo.label());
            assert!(run.errors.is_empty(), "{}: {:?}", algo.label(), run.errors);
        }
    }

    #[test]
    fn wtlw_beats_folklore_on_every_class() {
        let p = ModelParams::default_experiment();
        let spec = erase(FifoQueue::new());
        let mk_cfg = || SimConfig::new(p, DelaySpec::AllMax).with_schedule(queue_workload());
        let wtlw = run_algorithm(Algorithm::Wtlw { x: Time(1200) }, &spec, &mk_cfg());
        let central = run_algorithm(Algorithm::Centralized, &spec, &mk_cfg());
        let bcast = run_algorithm(Algorithm::Broadcast, &spec, &mk_cfg());
        for op in ["enqueue", "peek", "dequeue"] {
            let w = wtlw.max_latency(Some(op)).unwrap();
            let c = central.max_latency(Some(op)).unwrap();
            let b = bcast.max_latency(Some(op)).unwrap();
            assert!(w < c, "{op}: wtlw {w} !< centralized {c}");
            assert!(w < b, "{op}: wtlw {w} !< broadcast {b}");
        }
    }

    #[test]
    fn op_stats_aggregates() {
        let p = ModelParams::default_experiment();
        let spec = erase(FifoQueue::new());
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(queue_workload());
        let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
        let stats = op_stats(&run, &spec);
        assert_eq!(stats.len(), 3);
        let enq = stats.iter().find(|s| s.op == "enqueue").unwrap();
        assert_eq!(enq.count, 2);
        assert_eq!(enq.class, OpClass::PureMutator);
        assert_eq!(enq.min, enq.max);
        assert_eq!(enq.mean, p.epsilon); // X = 0 → MOP latency = ε
    }
}
