//! Construction 1 of the paper: the explicit linearization induced by
//! Algorithm 1, verified structurally.
//!
//! The linearizability proof (Section 5.2) does not search for a witness —
//! it *constructs* one:
//!
//! 1. all mutators, in increasing timestamp order;
//! 2. each pure accessor inserted immediately after the last mutator its
//!    invoking process had executed locally when the accessor returned;
//! 3. runs of adjacent pure accessors sorted by timestamp.
//!
//! [`construct`] builds exactly that permutation from the execution logs the
//! [`WtlwNode`]s keep, and [`verify`] checks the two linearization conditions
//! (legality; real-time order of non-overlapping operations) plus the
//! supporting lemmas (all replicas executed the same mutator sequence, in
//! increasing timestamp order — Lemma 5).

use crate::timestamp::Timestamp;
use crate::wtlw::WtlwNode;
use lintime_adt::spec::{ObjectSpec, OpInstance};
use lintime_sim::run::Run;
use lintime_sim::time::Time;
use std::sync::Arc;

/// One element of the constructed permutation.
#[derive(Clone, Debug, PartialEq)]
pub struct Placed {
    /// The operation instance.
    pub instance: OpInstance,
    /// Its timestamp (backdated for accessors).
    pub ts: Timestamp,
    /// Whether this entry is a pure accessor.
    pub is_accessor: bool,
}

/// Build the Construction-1 permutation from node execution logs.
///
/// Fails if the replicas executed different mutator sequences (which would
/// falsify Lemma 5 / History Oblivion).
pub fn construct(nodes: &[WtlwNode]) -> Result<Vec<Placed>, String> {
    let reference = &nodes[0].mutator_log;
    for (i, node) in nodes.iter().enumerate().skip(1) {
        if node.mutator_log.len() != reference.len() {
            return Err(format!(
                "replica p{} executed {} mutators, p0 executed {}",
                i,
                node.mutator_log.len(),
                reference.len()
            ));
        }
        for (k, (a, b)) in reference.iter().zip(&node.mutator_log).enumerate() {
            if a != b {
                return Err(format!(
                    "replica p{i} diverges from p0 at mutator #{k}: {:?} vs {:?}",
                    b, a
                ));
            }
        }
    }
    // Lemma 5: mutators executed in increasing timestamp order.
    for w in reference.windows(2) {
        if w[0].ts >= w[1].ts {
            return Err(format!(
                "mutators executed out of timestamp order: {:?} then {:?}",
                w[0].ts, w[1].ts
            ));
        }
    }

    // Bucket accessors by insertion position (index into the mutator
    // sequence after which they go), then sort each bucket by timestamp.
    let mut buckets: Vec<Vec<Placed>> = vec![Vec::new(); reference.len() + 1];
    for node in nodes {
        for acc in &node.accessor_log {
            buckets[acc.after].push(Placed {
                instance: acc.instance.clone(),
                ts: acc.ts,
                is_accessor: true,
            });
        }
    }
    for bucket in &mut buckets {
        bucket.sort_by_key(|p| p.ts);
    }

    let mut pi = Vec::new();
    pi.extend(buckets[0].iter().cloned());
    for (k, m) in reference.iter().enumerate() {
        pi.push(Placed { instance: m.instance.clone(), ts: m.ts, is_accessor: false });
        pi.extend(buckets[k + 1].iter().cloned());
    }
    Ok(pi)
}

/// Verify that the constructed permutation linearizes the run:
///
/// * it contains exactly the run's completed instances;
/// * it is legal for `spec`;
/// * it respects the real-time order of non-overlapping operations.
pub fn verify(
    run: &Run,
    nodes: &[WtlwNode],
    spec: &Arc<dyn ObjectSpec>,
) -> Result<Vec<Placed>, String> {
    let pi = construct(nodes)?;

    // Same multiset of instances as the run.
    let mut from_run: Vec<OpInstance> = run.ops.iter().filter_map(|o| o.instance()).collect();
    let mut from_pi: Vec<OpInstance> = pi.iter().map(|p| p.instance.clone()).collect();
    let key = |i: &OpInstance| format!("{i:?}");
    from_run.sort_by_key(key);
    from_pi.sort_by_key(key);
    if from_run != from_pi {
        return Err(format!(
            "permutation instances differ from run instances:\n  run: {from_run:?}\n  pi:  {from_pi:?}"
        ));
    }

    // Legality (Lemma 7).
    let seq: Vec<OpInstance> = pi.iter().map(|p| p.instance.clone()).collect();
    if let Some(idx) = spec.first_illegal(&seq) {
        return Err(format!("constructed permutation illegal at position {idx}: {:?}", seq[idx]));
    }

    // Real-time order (Lemma 6). Match π entries to run records through
    // intervals: for each pair i < j in π, op_j must NOT respond before op_i
    // is invoked. Instances may repeat, so match greedily by earliest
    // interval per identical instance, per position.
    let intervals = match_intervals(run, &pi)?;
    for i in 0..intervals.len() {
        for j in (i + 1)..intervals.len() {
            let (_, resp_j) = intervals[j];
            let (inv_i, _) = intervals[i];
            if resp_j < inv_i {
                return Err(format!(
                    "real-time order violated: π[{j}] ({:?}) responded at {:?} before π[{i}] ({:?}) invoked at {:?}",
                    pi[j].instance, resp_j, pi[i].instance, inv_i
                ));
            }
        }
    }
    Ok(pi)
}

/// Match each π entry to a run record, returning `(t_invoke, t_respond)` per
/// entry. Identical instances are matched in invocation-time order, which is
/// the most permissive assignment for the subsequent real-time check among
/// equal candidates.
fn match_intervals(run: &Run, pi: &[Placed]) -> Result<Vec<(Time, Time)>, String> {
    let mut used = vec![false; run.ops.len()];
    let mut out = Vec::with_capacity(pi.len());
    for p in pi {
        let mut best: Option<(usize, Time, Time)> = None;
        for (k, op) in run.ops.iter().enumerate() {
            if used[k] {
                continue;
            }
            let Some(inst) = op.instance() else { continue };
            if inst != p.instance {
                continue;
            }
            let t_resp = op.t_respond.expect("completed");
            if best.is_none_or(|(_, bi, _)| op.t_invoke < bi) {
                best = Some((k, op.t_invoke, t_resp));
            }
        }
        let (k, ti, tr) =
            best.ok_or_else(|| format!("no unmatched run record for {:?}", p.instance))?;
        used[k] = true;
        out.push((ti, tr));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wtlw::WtlwNode;
    use lintime_adt::spec::{erase, Invocation};
    use lintime_adt::types::{FifoQueue, Register, RmwRegister};
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate_full, SimConfig};
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::{ModelParams, Pid, Time};

    fn run_and_verify(
        spec: Arc<dyn ObjectSpec>,
        x: Time,
        delay: DelaySpec,
        schedule: Schedule,
    ) -> Result<Vec<Placed>, String> {
        let p = ModelParams::default_experiment();
        let cfg = SimConfig::new(p, delay).with_schedule(schedule);
        let (run, nodes) = simulate_full(&cfg, |pid| WtlwNode::new(pid, Arc::clone(&spec), p, x));
        assert!(run.complete(), "{run}");
        verify(&run, &nodes, &spec)
    }

    #[test]
    fn register_workload_verifies() {
        let pi = run_and_verify(
            erase(Register::new(0)),
            Time(1200),
            DelaySpec::AllMax,
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("write", 1))
                .at(Pid(1), Time(5), Invocation::new("write", 2))
                .at(Pid(2), Time(10_000), Invocation::nullary("read"))
                .at(Pid(3), Time(10_000), Invocation::nullary("read")),
        )
        .expect("construction must verify");
        assert_eq!(pi.len(), 4);
        // Mutators appear in timestamp order within π.
        let mut last_mut_ts = None;
        for p in &pi {
            if !p.is_accessor {
                assert!(last_mut_ts.is_none_or(|t| t < p.ts));
                last_mut_ts = Some(p.ts);
            }
        }
    }

    #[test]
    fn queue_with_mixed_ops_verifies() {
        run_and_verify(
            erase(FifoQueue::new()),
            Time(600),
            DelaySpec::UniformRandom { seed: 21 },
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
                .at(Pid(1), Time(0), Invocation::new("enqueue", 2))
                .at(Pid(2), Time(100), Invocation::nullary("dequeue"))
                .at(Pid(3), Time(200), Invocation::nullary("peek"))
                .at(Pid(0), Time(30_000), Invocation::nullary("dequeue")),
        )
        .expect("construction must verify");
    }

    #[test]
    fn rmw_contention_verifies() {
        run_and_verify(
            erase(RmwRegister::new(0)),
            Time::ZERO,
            DelaySpec::AllMin,
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("rmw", 1))
                .at(Pid(1), Time(1), Invocation::new("rmw", 10))
                .at(Pid(2), Time(2), Invocation::new("rmw", 100))
                .at(Pid(3), Time(20_000), Invocation::nullary("read")),
        )
        .expect("construction must verify");
    }

    #[test]
    fn diverging_replicas_are_reported() {
        // Hand-build nodes with diverging logs.
        let spec = erase(Register::new(0));
        let p = ModelParams::default_experiment();
        let mut a = WtlwNode::new(Pid(0), Arc::clone(&spec), p, Time::ZERO);
        let mut b = WtlwNode::new(Pid(1), Arc::clone(&spec), p, Time::ZERO);
        use crate::wtlw::ExecutedMutator;
        a.mutator_log.push(ExecutedMutator {
            ts: Timestamp::new(Time(1), Pid(0)),
            instance: OpInstance::new("write", 1, ()),
        });
        b.mutator_log.push(ExecutedMutator {
            ts: Timestamp::new(Time(1), Pid(0)),
            instance: OpInstance::new("write", 2, ()),
        });
        let err = construct(&[a, b]).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }
}
