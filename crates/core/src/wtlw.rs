//! Algorithm 1 of the paper (Wang–Talmage–Lee–Welch): the first
//! linearizable implementation of *arbitrary* data types with every
//! operation faster than the folklore `2d`.
//!
//! Every process keeps a local copy of the object and a priority queue
//! `To_Execute` of mutators waiting for their coordinated execution time.
//! Operations carry timestamps `(local invocation time, pid)`; mutators are
//! executed at every process in timestamp order, which (with the timer
//! discipline below) yields a common linearization.
//!
//! | class | response time | mechanism |
//! |---|---|---|
//! | pure accessor (`AOP`) | `d − X` | timestamp `(t − X, i)`; wait `d − X`, drain smaller-timestamped mutators, execute locally |
//! | pure mutator (`MOP`) | `X + ε` | broadcast; ack after `X + ε`, independent of execution |
//! | mixed (`OOP`) | `d + ε` | broadcast; executes (and responds) when its `u + ε` post-add timer fires |
//!
//! Mutator pipeline at every process: the invoker simulates the minimum
//! message delay with a `d − u` *add* timer (other processes add on message
//! receipt), then a `u + ε` *execute* timer guarantees no smaller timestamp
//! can still arrive (maximum delay spread `u` plus clock skew `ε`).
//!
//! The timer durations are gathered in [`Waits`]; [`Waits::standard`] is the
//! paper's algorithm with tradeoff parameter `X ∈ [0, d − ε]`, and the
//! lower-bound experiments build deliberately-too-fast variants
//! ([`Waits::scaled`]) to act as victims for the Theorem 2–5 adversaries.

use crate::timestamp::Timestamp;
use lintime_adt::spec::{Invocation, ObjState, ObjectSpec, OpClass, OpInstance};
use lintime_adt::value::Value;
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::{ModelParams, Pid, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Timer durations used by [`WtlwNode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Waits {
    /// Pure accessors respond this long after invocation (paper: `d − X`).
    pub aop_respond: Time,
    /// Pure accessor timestamps are backdated by this much (paper: `X`).
    pub aop_backdate: Time,
    /// Pure mutators acknowledge this long after invocation (paper: `X + ε`).
    pub mop_respond: Time,
    /// The invoker adds its own mutator to `To_Execute` after this long
    /// (paper: `d − u`, the minimum message delay).
    pub add: Time,
    /// A mutator executes this long after being added (paper: `u + ε`).
    pub execute: Time,
}

impl Waits {
    /// The paper's Algorithm 1 with tradeoff parameter `x ∈ [0, d − ε]`.
    pub fn standard(params: ModelParams, x: Time) -> Waits {
        assert!(
            x >= Time::ZERO && x <= params.d - params.epsilon,
            "X must lie in [0, d - epsilon]"
        );
        Waits {
            aop_respond: params.d - x,
            aop_backdate: x,
            mop_respond: x + params.epsilon,
            add: params.min_delay(),
            execute: params.u + params.epsilon,
        }
    }

    /// A uniformly scaled (sped-up) variant: every wait multiplied by
    /// `num/den`. Used to build lower-bound victims that respond too fast.
    pub fn scaled(self, num: i64, den: i64) -> Waits {
        let s = |t: Time| Time(t.as_ticks() * num / den);
        Waits {
            aop_respond: s(self.aop_respond),
            aop_backdate: self.aop_backdate,
            mop_respond: s(self.mop_respond),
            add: s(self.add),
            execute: s(self.execute),
        }
    }

    /// Worst-case response time of an operation class under these waits.
    pub fn predicted_latency(self, class: OpClass) -> Time {
        match class {
            OpClass::PureAccessor => self.aop_respond,
            OpClass::PureMutator => self.mop_respond,
            OpClass::Mixed => self.add + self.execute,
        }
    }
}

/// The paper's predicted worst-case latency for `class` under Algorithm 1
/// with parameter `x`: `d − X`, `X + ε`, or `d + ε` (Lemma 4).
pub fn predicted_latency(params: ModelParams, x: Time, class: OpClass) -> Time {
    match class {
        OpClass::PureAccessor => params.d - x,
        OpClass::PureMutator => x + params.epsilon,
        OpClass::Mixed => params.d + params.epsilon,
    }
}

/// Message: announcement of a mutator invocation (line 15 of Algorithm 1).
#[derive(Clone, Debug, PartialEq)]
pub struct WtlwMsg {
    /// The invoked operation.
    pub inv: Invocation,
    /// Its timestamp.
    pub ts: Timestamp,
}

impl WtlwMsg {
    /// Estimated serialized size in bytes: a 12-byte timestamp (8-byte time
    /// plus 4-byte pid) plus the invocation.
    pub fn wire_bytes(&self) -> usize {
        12 + self.inv.wire_bytes()
    }
}

/// Timer tags of Algorithm 1.
#[derive(Clone, Debug, PartialEq)]
pub enum WtlwTimer {
    /// Respond to a pure accessor (lines 3–9).
    RespondAop {
        /// The accessor invocation.
        inv: Invocation,
        /// Its (backdated) timestamp.
        ts: Timestamp,
    },
    /// Acknowledge a pure mutator (lines 16–17).
    RespondMop,
    /// Add the invoker's own mutator to `To_Execute` (lines 14, 18–20).
    Add {
        /// The mutator invocation.
        inv: Invocation,
        /// Its timestamp.
        ts: Timestamp,
    },
    /// Execute mutators with timestamps ≤ `ts` (lines 21–29).
    Execute {
        /// Timestamp of the entry this timer belongs to.
        ts: Timestamp,
    },
}

/// A mutator as executed on a process's local copy (Construction 1 input).
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutedMutator {
    /// The mutator's timestamp.
    pub ts: Timestamp,
    /// The executed instance (invocation + locally computed return).
    pub instance: OpInstance,
}

/// A locally-invoked pure accessor as executed (Construction 1 input).
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutedAccessor {
    /// The accessor's (backdated) timestamp.
    pub ts: Timestamp,
    /// The executed instance.
    pub instance: OpInstance,
    /// How many mutators this process had executed when the accessor ran —
    /// i.e. the accessor reads the state after `mutator_log[..after]`.
    pub after: usize,
}

/// One process of Algorithm 1.
pub struct WtlwNode {
    pid: Pid,
    spec: Arc<dyn ObjectSpec>,
    object: Box<dyn ObjState>,
    waits: Waits,
    to_execute: BinaryHeap<Reverse<(Timestamp, Invocation)>>,
    /// Timestamp of the locally-invoked *mixed* operation awaiting execution.
    pending_mixed: Option<Timestamp>,
    /// Number of mutators executed on the local copy (diagnostics).
    executed: u64,
    /// Mutators executed on the local copy, in execution order.
    pub mutator_log: Vec<ExecutedMutator>,
    /// Locally-invoked pure accessors, in execution order.
    pub accessor_log: Vec<ExecutedAccessor>,
}

impl WtlwNode {
    /// A node with the paper's standard waits for tradeoff parameter `x`.
    pub fn new(pid: Pid, spec: Arc<dyn ObjectSpec>, params: ModelParams, x: Time) -> Self {
        Self::with_waits(pid, spec, Waits::standard(params, x))
    }

    /// A node with explicit timer durations (used to build lower-bound
    /// victims; correctness is only guaranteed for [`Waits::standard`]).
    pub fn with_waits(pid: Pid, spec: Arc<dyn ObjectSpec>, waits: Waits) -> Self {
        let object = spec.new_object();
        WtlwNode {
            pid,
            spec,
            object,
            waits,
            to_execute: BinaryHeap::new(),
            pending_mixed: None,
            executed: 0,
            mutator_log: Vec::new(),
            accessor_log: Vec::new(),
        }
    }

    /// Number of mutators executed on the local copy so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Canonical encoding of the local copy's current state.
    pub fn local_state(&self) -> Value {
        self.object.canonical()
    }

    fn add_to_queue(
        &mut self,
        inv: Invocation,
        ts: Timestamp,
        fx: &mut Effects<WtlwMsg, WtlwTimer>,
    ) {
        self.to_execute.push(Reverse((ts, inv)));
        fx.set_timer(self.waits.execute, WtlwTimer::Execute { ts });
    }

    /// Execute every queued mutator with timestamp ≤ `up_to`, in timestamp
    /// order (the while-loops of lines 4–8 and 22–29). `firing` is the
    /// timestamp whose own Execute timer triggered this drain (if any), so we
    /// do not try to cancel an already-consumed timer.
    fn drain_up_to(
        &mut self,
        up_to: Timestamp,
        firing: Option<Timestamp>,
        fx: &mut Effects<WtlwMsg, WtlwTimer>,
    ) {
        while let Some(Reverse((ts, _))) = self.to_execute.peek() {
            if *ts > up_to {
                break;
            }
            let Reverse((ts, inv)) = self.to_execute.pop().expect("peeked entry");
            let ret = self.object.apply(inv.op, &inv.arg);
            self.executed += 1;
            self.mutator_log.push(ExecutedMutator {
                ts,
                instance: OpInstance { op: inv.op, arg: inv.arg.clone(), ret: ret.clone() },
            });
            if Some(ts) != firing {
                fx.cancel_timer(WtlwTimer::Execute { ts });
            }
            if self.pending_mixed == Some(ts) {
                self.pending_mixed = None;
                fx.respond(ret);
            }
        }
    }
}

impl Node for WtlwNode {
    type Msg = WtlwMsg;
    type Timer = WtlwTimer;

    fn msg_wire_bytes(msg: &WtlwMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<WtlwMsg, WtlwTimer>) {
        let class = self
            .spec
            .op_meta(inv.op)
            .unwrap_or_else(|| {
                panic!("unknown operation {:?} for type {}", inv.op, self.spec.name())
            })
            .class;
        match class {
            OpClass::PureAccessor => {
                // Line 2: timestamp backdated by X; respond timer for d − X.
                let ts = Timestamp::new(fx.local_time() - self.waits.aop_backdate, self.pid);
                fx.set_timer(self.waits.aop_respond, WtlwTimer::RespondAop { inv, ts });
            }
            OpClass::PureMutator | OpClass::Mixed => {
                let ts = Timestamp::new(fx.local_time(), self.pid);
                if class == OpClass::PureMutator {
                    // Line 12: pure mutators acknowledge after X + ε.
                    fx.set_timer(self.waits.mop_respond, WtlwTimer::RespondMop);
                } else {
                    self.pending_mixed = Some(ts);
                }
                // Line 14: simulate the minimum message delay to ourselves.
                fx.set_timer(self.waits.add, WtlwTimer::Add { inv: inv.clone(), ts });
                // Line 15: announce to all other processes.
                fx.broadcast(WtlwMsg { inv, ts });
            }
        }
    }

    fn on_deliver(&mut self, _from: Pid, msg: WtlwMsg, fx: &mut Effects<WtlwMsg, WtlwTimer>) {
        // Lines 18–20 (receive branch): queue the remote mutator.
        self.add_to_queue(msg.inv, msg.ts, fx);
    }

    fn on_timer(&mut self, timer: WtlwTimer, fx: &mut Effects<WtlwMsg, WtlwTimer>) {
        match timer {
            WtlwTimer::RespondAop { inv, ts } => {
                // Lines 3–9: drain smaller-timestamped mutators, then execute
                // the accessor locally and respond.
                self.drain_up_to(ts, None, fx);
                let ret = self.object.apply(inv.op, &inv.arg);
                self.accessor_log.push(ExecutedAccessor {
                    ts,
                    instance: OpInstance { op: inv.op, arg: inv.arg.clone(), ret: ret.clone() },
                    after: self.mutator_log.len(),
                });
                fx.respond(ret);
            }
            WtlwTimer::RespondMop => {
                // Lines 16–17.
                fx.respond(Value::Unit);
            }
            WtlwTimer::Add { inv, ts } => {
                // Lines 18–20 (timer branch).
                self.add_to_queue(inv, ts, fx);
            }
            WtlwTimer::Execute { ts } => {
                // Lines 21–29.
                self.drain_up_to(ts, Some(ts), fx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::{FifoQueue, Register, RmwRegister};
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, SimConfig};
    use lintime_sim::schedule::Schedule;

    fn params() -> ModelParams {
        ModelParams::default_experiment()
    }

    fn wtlw_cluster(spec: Arc<dyn ObjectSpec>, x: Time, cfg: SimConfig) -> lintime_sim::run::Run {
        let p = cfg.params;
        simulate(&cfg, |pid| WtlwNode::new(pid, Arc::clone(&spec), p, x))
    }

    #[test]
    fn waits_standard_matches_paper() {
        let p = params();
        let w = Waits::standard(p, Time(1200));
        assert_eq!(w.aop_respond, Time(4800)); // d - X
        assert_eq!(w.mop_respond, Time(3000)); // X + ε
        assert_eq!(w.add, Time(3600)); // d - u
        assert_eq!(w.execute, Time(4200)); // u + ε
        assert_eq!(w.predicted_latency(OpClass::Mixed), p.d + p.epsilon);
    }

    #[test]
    #[should_panic(expected = "X must lie")]
    fn waits_rejects_out_of_range_x() {
        let p = params();
        let _ = Waits::standard(p, p.d); // d > d - ε
    }

    #[test]
    fn solo_write_read_round_trip() {
        let p = params();
        let x = Time::ZERO;
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 42)).at(
                Pid(1),
                Time(20_000),
                Invocation::nullary("read"),
            ),
        );
        let run = wtlw_cluster(spec, x, cfg);
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        // Write is a pure mutator: responds at X + ε = 1800.
        assert_eq!(run.ops[0].latency(), Some(p.epsilon));
        // Read (pure accessor): responds at d − X = 6000 and sees the write.
        assert_eq!(run.ops[1].latency(), Some(p.d));
        assert_eq!(run.ops[1].ret, Some(Value::Int(42)));
    }

    #[test]
    fn latencies_match_lemma_4_exactly() {
        // Lemma 4: AOP = d − X, MOP = X + ε, OOP = d + ε, for every X and
        // under any admissible delay assignment.
        let p = params();
        for x in [Time::ZERO, Time(1200), Time(2400), p.d - p.epsilon] {
            for delay in
                [DelaySpec::AllMax, DelaySpec::AllMin, DelaySpec::UniformRandom { seed: 5 }]
            {
                let spec = erase(RmwRegister::new(0));
                let cfg = SimConfig::new(p, delay).with_schedule(
                    Schedule::new()
                        .at(Pid(0), Time(0), Invocation::new("write", 1))
                        .at(Pid(1), Time(0), Invocation::nullary("read"))
                        .at(Pid(2), Time(0), Invocation::new("rmw", 1)),
                );
                let run = wtlw_cluster(spec, x, cfg);
                assert!(run.complete());
                assert_eq!(run.ops[0].latency(), Some(x + p.epsilon), "write at X={x}");
                assert_eq!(run.ops[1].latency(), Some(p.d - x), "read at X={x}");
                assert_eq!(run.ops[2].latency(), Some(p.d + p.epsilon), "rmw at X={x}");
            }
        }
    }

    #[test]
    fn concurrent_writes_execute_in_timestamp_order_everywhere() {
        let p = params();
        let spec = erase(Register::new(0));
        // Two concurrent writes with slightly different invocation times; a
        // late read must see the one with the larger timestamp.
        let cfg = SimConfig::new(p, DelaySpec::AllMin).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("write", 10))
                .at(Pid(1), Time(1), Invocation::new("write", 20))
                .at(Pid(2), Time(30_000), Invocation::nullary("read"))
                .at(Pid(3), Time(30_000), Invocation::nullary("read")),
        );
        let run = wtlw_cluster(spec, Time::ZERO, cfg);
        assert!(run.complete());
        assert_eq!(run.ops[2].ret, Some(Value::Int(20)));
        assert_eq!(run.ops[3].ret, Some(Value::Int(20)));
    }

    #[test]
    fn skewed_clocks_still_agree_on_order() {
        let p = params();
        let spec = erase(Register::new(0));
        // p1's clock is ε ahead; its write at real time 0 gets timestamp ε,
        // while p0's write at real time 1 gets timestamp 1 < ε = 1800. Every
        // replica must order p0's write first and p1's write last.
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_offsets(vec![Time::ZERO, p.epsilon, Time::ZERO, Time::ZERO])
            .with_schedule(
                Schedule::new()
                    .at(Pid(1), Time(0), Invocation::new("write", 111))
                    .at(Pid(0), Time(1), Invocation::new("write", 222))
                    .at(Pid(3), Time(40_000), Invocation::nullary("read")),
            );
        let run = wtlw_cluster(spec, Time::ZERO, cfg);
        assert!(run.complete());
        // Larger timestamp wins: p1's (1800) > p0's (1).
        assert_eq!(run.ops[2].ret, Some(Value::Int(111)));
    }

    #[test]
    fn mixed_op_returns_globally_ordered_value() {
        let p = params();
        let spec = erase(RmwRegister::new(0));
        // Two concurrent rmw(1): exactly one sees 0 and the other sees 1.
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("rmw", 1)).at(
                Pid(1),
                Time(5),
                Invocation::new("rmw", 1),
            ),
        );
        let run = wtlw_cluster(spec, Time::ZERO, cfg);
        assert!(run.complete());
        let mut rets: Vec<Value> = run.ops.iter().filter_map(|o| o.ret.clone()).collect();
        rets.sort();
        assert_eq!(rets, vec![Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn queue_fifo_across_processes() {
        let p = params();
        let spec = erase(FifoQueue::new());
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 11 }).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
                .at(Pid(1), Time(10_000), Invocation::new("enqueue", 2))
                .at(Pid(2), Time(40_000), Invocation::nullary("dequeue"))
                .at(Pid(3), Time(60_000), Invocation::nullary("dequeue")),
        );
        let run = wtlw_cluster(spec, Time(600), cfg);
        assert!(run.complete());
        assert_eq!(run.ops[2].ret, Some(Value::Int(1)));
        assert_eq!(run.ops[3].ret, Some(Value::Int(2)));
    }

    #[test]
    fn accessor_sees_all_previously_completed_mutators() {
        // Lemma 6 case 2: a read invoked after a write responded must see it,
        // even with the read's timestamp backdated by X.
        let p = params();
        let x = p.d - p.epsilon; // most aggressive backdating
        let spec = erase(Register::new(0));
        let write_resp = x + p.epsilon; // MOP latency
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("write", 9))
                // Invoke the read the instant the write responds.
                .at(Pid(1), write_resp, Invocation::nullary("read")),
        );
        let run = wtlw_cluster(spec, x, cfg);
        assert!(run.complete());
        assert_eq!(run.ops[1].ret, Some(Value::Int(9)), "{run}");
    }

    #[test]
    fn quiescence_no_leftover_events() {
        // Eventual Quiescence: a finite workload produces a finite run.
        let p = params();
        let spec = erase(FifoQueue::new());
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(Schedule::new().at(
            Pid(0),
            Time(0),
            Invocation::new("enqueue", 1),
        ));
        let run = wtlw_cluster(spec, Time::ZERO, cfg);
        assert!(run.complete());
        // Run ends once the last replica executes the mutator: invocation
        // message d, plus u + ε execute timer.
        assert_eq!(run.last_time, p.d + p.u + p.epsilon);
    }

    #[test]
    fn history_oblivion_final_states_agree() {
        // After quiescence every replica holds the same state regardless of
        // delay pattern — the History Oblivion property needed in Section 4.
        let p = params();
        let mut rets_per_delay = Vec::new();
        for delay in [DelaySpec::AllMax, DelaySpec::AllMin, DelaySpec::UniformRandom { seed: 3 }] {
            let spec = erase(FifoQueue::new());
            let cfg = SimConfig::new(p, delay).with_schedule(
                Schedule::new()
                    .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
                    .at(Pid(1), Time(2), Invocation::new("enqueue", 2))
                    .at(Pid(2), Time(50_000), Invocation::nullary("peek"))
                    .at(Pid(3), Time(50_000), Invocation::nullary("peek")),
            );
            let run = wtlw_cluster(spec, Time::ZERO, cfg);
            assert!(run.complete());
            assert_eq!(run.ops[2].ret, run.ops[3].ret);
            rets_per_delay.push(run.ops[2].ret.clone());
        }
        // The executed sequence is the same, so all delay patterns agree.
        assert!(rets_per_delay.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scaled_waits_truncate_toward_zero_at_small_ticks() {
        // The lower-bound victims are built by integer scaling; at small
        // tick counts the division truncates toward zero, never rounds up —
        // a victim must be *at most* as patient as requested.
        let w = Waits {
            aop_respond: Time(7),
            aop_backdate: Time(3),
            mop_respond: Time(1),
            add: Time(5),
            execute: Time(2),
        };
        let half = w.scaled(1, 2);
        assert_eq!(half.aop_respond, Time(3)); // 7/2 → 3, not 4
        assert_eq!(half.mop_respond, Time(0)); // 1/2 → 0
        assert_eq!(half.add, Time(2)); // 5/2 → 2
        assert_eq!(half.execute, Time(1));
        // The backdate is a timestamp adjustment, not a wait: never scaled.
        assert_eq!(half.aop_backdate, w.aop_backdate);

        let two_thirds = w.scaled(2, 3);
        assert_eq!(two_thirds.aop_respond, Time(4)); // 14/3 → 4
        assert_eq!(two_thirds.add, Time(3)); // 10/3 → 3
        assert_eq!(two_thirds.execute, Time(1)); // 4/3 → 1
    }

    #[test]
    fn scaling_by_one_is_the_identity_and_latencies_follow() {
        let p = params();
        let w = Waits::standard(p, Time(1200));
        assert_eq!(w.scaled(1, 1), w);
        assert_eq!(w.scaled(7, 7), w);
        // predicted_latency tracks the scaled waits exactly.
        let s = w.scaled(3, 4);
        assert_eq!(s.predicted_latency(OpClass::PureAccessor), s.aop_respond);
        assert_eq!(s.predicted_latency(OpClass::PureMutator), s.mop_respond);
        assert_eq!(s.predicted_latency(OpClass::Mixed), s.add + s.execute);
        assert!(s.predicted_latency(OpClass::Mixed) <= w.predicted_latency(OpClass::Mixed));
    }
}
