//! Crash-tolerant majority-quorum register backend, after Mostéfaoui &
//! Raynal's time-efficient crash-prone atomic register (arXiv:1601.04820),
//! with the communication-cost lens of Nataf & Moses (arXiv:2604.05862).
//!
//! Every process is both a *client* and a *replica* holding `(value, ts)`
//! where `ts = (seq, pid)` is ordered lexicographically. The protocol needs
//! no timers and no synchronized clocks — unlike Algorithm 1, it stays
//! linearizable under arbitrary message delays and survives crashes of any
//! minority of processes (`⌊(n−1)/2⌋`), at the price of quorum round trips:
//!
//! * **Write** is two-phase: phase 1 queries a majority for the highest
//!   sequence number in use, then phase 2 stores `(v, (max_seq + 1, pid))`
//!   at a majority. Worst-case `4d`, `4(n−1)` messages.
//! * **Read** queries a majority for `(value, ts)`. If every reply carries
//!   the *same* timestamp the quorums overlap cleanly and the read responds
//!   after a single round trip (`2d` — the time-efficient fast path). Mixed
//!   timestamps force the classic ABD write-back of the maximum before
//!   responding, so a later read can never observe an older value.
//!
//! Quorum counting is crash- and duplicate-safe: each phase tracks the *set*
//! of processes heard from (the local replica counts implicitly — the engine
//! forbids self-sends), so fault-injected duplicates never inflate a quorum
//! and lost replies only delay, never corrupt. Linearizability rests on
//! majority intersection: a committed write's timestamp is visible to every
//! later quorum, and replica timestamps only grow.

use lintime_adt::spec::{Invocation, ObjectSpec, SpecKind};
use lintime_adt::types::register::ops;
use lintime_adt::value::Value;
use lintime_obs::{EventCategory, Obs};
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::Pid;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A quorum timestamp: sequence number with process-id tie-breaking. The
/// derived order is lexicographic, so timestamps form a total order agreed
/// on by every replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MrTs {
    /// Write sequence number (phase-1 maximum plus one).
    pub seq: u64,
    /// Writing process (tie-breaker between concurrent writers).
    pub pid: Pid,
}

impl MrTs {
    /// The timestamp every replica starts from (smaller than any write's).
    pub const INITIAL: MrTs = MrTs { seq: 0, pid: Pid(0) };
}

/// Messages of the quorum register. `rid` is the client's per-operation
/// request id; replies carrying a stale `rid` are discarded.
#[derive(Clone, Debug, PartialEq)]
pub enum MrMsg {
    /// Write phase 1: what is the highest sequence number you have stored?
    SeqQuery {
        /// Requesting operation id.
        rid: u64,
    },
    /// Reply to [`MrMsg::SeqQuery`].
    SeqReply {
        /// Echoed operation id.
        rid: u64,
        /// The replica's current sequence number.
        seq: u64,
    },
    /// Read phase 1: what `(value, ts)` do you hold?
    ValQuery {
        /// Requesting operation id.
        rid: u64,
    },
    /// Reply to [`MrMsg::ValQuery`].
    ValReply {
        /// Echoed operation id.
        rid: u64,
        /// The replica's current timestamp.
        ts: MrTs,
        /// The replica's current value.
        val: Value,
    },
    /// Store `(val, ts)` (write phase 2, or a read's write-back). The
    /// replica adopts it iff `ts` exceeds what it holds, and always acks.
    Store {
        /// Requesting operation id.
        rid: u64,
        /// Timestamp to store.
        ts: MrTs,
        /// Value to store.
        val: Value,
    },
    /// Acknowledgement of a [`MrMsg::Store`].
    StoreAck {
        /// Echoed operation id.
        rid: u64,
    },
}

impl MrMsg {
    /// Estimated serialized size in bytes: tag + 8-byte `rid`, plus the
    /// variant payload (a timestamp is 12 bytes: 8-byte seq + 4-byte pid).
    pub fn wire_bytes(&self) -> usize {
        9 + match self {
            MrMsg::SeqQuery { .. } | MrMsg::ValQuery { .. } | MrMsg::StoreAck { .. } => 0,
            MrMsg::SeqReply { .. } => 8,
            MrMsg::ValReply { val, .. } | MrMsg::Store { val, .. } => 12 + val.wire_bytes(),
        }
    }
}

/// Timer type (the quorum register needs no timers).
#[derive(Clone, Debug, PartialEq)]
pub enum NoTimer {}

/// Client-side progress of the operation pending at this process. Each
/// phase records the set of processes heard from (including this one);
/// sets, not counters, so duplicated replies cannot inflate a quorum.
enum Phase {
    Idle,
    /// Write phase 1: collecting sequence numbers.
    WriteQuery {
        val: Value,
        max_seq: u64,
        heard: BTreeSet<Pid>,
    },
    /// Write phase 2: collecting store acks.
    WriteCommit {
        heard: BTreeSet<Pid>,
    },
    /// Read phase 1: collecting `(value, ts)` replies. `uniform` stays true
    /// while every reply carries the same timestamp.
    ReadQuery {
        best_ts: MrTs,
        best_val: Value,
        uniform: bool,
        heard: BTreeSet<Pid>,
    },
    /// Read slow path: writing the maximum back before responding.
    ReadWriteback {
        val: Value,
        heard: BTreeSet<Pid>,
    },
}

/// Pre-registered `mr.*` metric handles (see [`MrNode::with_obs`]).
struct MrMetrics {
    round_trips: lintime_obs::Counter,
    fast_reads: lintime_obs::Counter,
    read_writebacks: lintime_obs::Counter,
}

impl MrMetrics {
    fn register(obs: &Obs) -> MrMetrics {
        let r = &obs.metrics;
        MrMetrics {
            round_trips: r.counter("mr.quorum_round_trips"),
            fast_reads: r.counter("mr.fast_reads"),
            read_writebacks: r.counter("mr.read_writebacks"),
        }
    }
}

/// One process of the majority-quorum register: replica state plus the
/// client state machine for its own pending operation.
pub struct MrNode {
    pid: Pid,
    n: usize,
    /// Replica state: highest-timestamped value stored here.
    ts: MrTs,
    val: Value,
    /// Client state.
    rid: u64,
    phase: Phase,
    /// Completed quorum round trips (each phase of each operation is one).
    round_trips: u64,
    /// Reads that responded after a single round trip.
    fast_reads: u64,
    /// Reads that needed the write-back slow path.
    read_writebacks: u64,
    obs: Obs,
    metrics: Option<MrMetrics>,
}

impl MrNode {
    /// Build a node. The spec must be a read/write register
    /// ([`SpecKind::Register`]): the protocol replicates a single
    /// overwritable value, not arbitrary objects.
    pub fn new(pid: Pid, spec: Arc<dyn ObjectSpec>, n: usize) -> Self {
        assert_eq!(
            spec.kind(),
            SpecKind::Register,
            "the MR quorum backend implements a read/write register, not {}",
            spec.name()
        );
        // Every replica starts from the register's initial value, read off a
        // fresh object so deliberate non-zero initializations are honored.
        let initial = spec.new_object().apply(ops::READ, &Value::Unit);
        MrNode {
            pid,
            n,
            ts: MrTs::INITIAL,
            val: initial,
            rid: 0,
            phase: Phase::Idle,
            round_trips: 0,
            fast_reads: 0,
            read_writebacks: 0,
            obs: Obs::off(),
            metrics: None,
        }
    }

    /// Attach an observability bundle: quorum round trips, fast reads, and
    /// write-backs become `mr.*` counters and trace events.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.metrics = obs.is_active().then(|| MrMetrics::register(&obs));
        self.obs = obs;
        self
    }

    /// Majority quorum size `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Completed quorum round trips at this node.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// Reads that completed on the one-round-trip fast path.
    pub fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    /// Reads that needed the write-back slow path.
    pub fn read_writebacks(&self) -> u64 {
        self.read_writebacks
    }

    /// Replica adoption: keep the lexicographically larger timestamp.
    fn adopt(&mut self, ts: MrTs, val: Value) {
        if ts > self.ts {
            self.ts = ts;
            self.val = val;
        }
    }

    fn count_round_trip(&mut self) {
        self.round_trips += 1;
        if let Some(m) = &self.metrics {
            m.round_trips.inc();
        }
    }

    /// A fresh phase quorum with the local replica already counted.
    fn heard_self(&self) -> BTreeSet<Pid> {
        let mut heard = BTreeSet::new();
        heard.insert(self.pid);
        heard
    }

    /// Drive the client state machine: whenever the current phase has heard
    /// a majority, finish it and start the next (or respond). A loop rather
    /// than recursion — with `n = 1` every quorum is immediately satisfied
    /// and a write falls straight through both phases.
    fn advance(&mut self, fx: &mut Effects<MrMsg, NoTimer>) {
        loop {
            let q = self.quorum();
            let ready = match &self.phase {
                Phase::WriteQuery { heard, .. }
                | Phase::WriteCommit { heard }
                | Phase::ReadQuery { heard, .. }
                | Phase::ReadWriteback { heard, .. } => heard.len() >= q,
                Phase::Idle => false,
            };
            if !ready {
                return;
            }
            match std::mem::replace(&mut self.phase, Phase::Idle) {
                Phase::Idle => unreachable!("ready implies a live phase"),
                Phase::WriteQuery { val, max_seq, .. } => {
                    self.count_round_trip();
                    let ts = MrTs { seq: max_seq + 1, pid: self.pid };
                    self.adopt(ts, val.clone());
                    self.phase = Phase::WriteCommit { heard: self.heard_self() };
                    fx.broadcast(MrMsg::Store { rid: self.rid, ts, val });
                }
                Phase::WriteCommit { .. } => {
                    self.count_round_trip();
                    fx.respond(Value::Unit); // a register write acks with Unit
                    return;
                }
                Phase::ReadQuery { best_ts, best_val, uniform, .. } => {
                    self.count_round_trip();
                    if uniform {
                        // Every quorum member holds the same timestamp: the
                        // value is already at a majority, respond directly.
                        self.fast_reads += 1;
                        if let Some(m) = &self.metrics {
                            m.fast_reads.inc();
                        }
                        fx.respond(best_val);
                        return;
                    }
                    // Mixed timestamps: write the maximum back to a majority
                    // before responding, so no later read can see older state.
                    self.read_writebacks += 1;
                    if let Some(m) = &self.metrics {
                        m.read_writebacks.inc();
                    }
                    self.obs.emit(fx.local_time().0, Some(self.pid.0), EventCategory::Send, || {
                        format!("read write-back of {best_ts:?} before responding")
                    });
                    self.adopt(best_ts, best_val.clone());
                    self.phase =
                        Phase::ReadWriteback { val: best_val.clone(), heard: self.heard_self() };
                    fx.broadcast(MrMsg::Store { rid: self.rid, ts: best_ts, val: best_val });
                }
                Phase::ReadWriteback { val, .. } => {
                    self.count_round_trip();
                    fx.respond(val);
                    return;
                }
            }
        }
    }
}

impl Node for MrNode {
    type Msg = MrMsg;
    type Timer = NoTimer;

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<MrMsg, NoTimer>) {
        assert!(
            matches!(self.phase, Phase::Idle),
            "one operation at a time per process (engine enforces this)"
        );
        self.rid += 1;
        match inv.op {
            ops::WRITE => {
                self.phase = Phase::WriteQuery {
                    val: inv.arg,
                    max_seq: self.ts.seq,
                    heard: self.heard_self(),
                };
                fx.broadcast(MrMsg::SeqQuery { rid: self.rid });
            }
            ops::READ => {
                self.phase = Phase::ReadQuery {
                    best_ts: self.ts,
                    best_val: self.val.clone(),
                    uniform: true,
                    heard: self.heard_self(),
                };
                fx.broadcast(MrMsg::ValQuery { rid: self.rid });
            }
            other => panic!("mr_register: unsupported operation {other:?}"),
        }
        // n = 1 (or tiny clusters): the local replica may already be a
        // majority on its own.
        self.advance(fx);
    }

    fn on_deliver(&mut self, from: Pid, msg: MrMsg, fx: &mut Effects<MrMsg, NoTimer>) {
        match msg {
            // Replica duties: answer queries, adopt stores, always ack.
            MrMsg::SeqQuery { rid } => fx.send(from, MrMsg::SeqReply { rid, seq: self.ts.seq }),
            MrMsg::ValQuery { rid } => {
                fx.send(from, MrMsg::ValReply { rid, ts: self.ts, val: self.val.clone() })
            }
            MrMsg::Store { rid, ts, val } => {
                self.adopt(ts, val);
                fx.send(from, MrMsg::StoreAck { rid });
            }
            // Client-side replies: discarded unless they carry the current
            // operation id *and* fit the current phase.
            MrMsg::SeqReply { rid, seq } if rid == self.rid => {
                if let Phase::WriteQuery { max_seq, heard, .. } = &mut self.phase {
                    if heard.insert(from) {
                        *max_seq = (*max_seq).max(seq);
                        self.advance(fx);
                    }
                }
            }
            MrMsg::ValReply { rid, ts, val } if rid == self.rid => {
                if let Phase::ReadQuery { best_ts, best_val, uniform, heard } = &mut self.phase {
                    if heard.insert(from) {
                        if ts != *best_ts {
                            *uniform = false;
                        }
                        if ts > *best_ts {
                            *best_ts = ts;
                            *best_val = val;
                        }
                        self.advance(fx);
                    }
                }
            }
            MrMsg::StoreAck { rid } if rid == self.rid => {
                if let Phase::WriteCommit { heard } | Phase::ReadWriteback { heard, .. } =
                    &mut self.phase
                {
                    if heard.insert(from) {
                        self.advance(fx);
                    }
                }
            }
            // Stale replies from an already-completed operation.
            MrMsg::SeqReply { .. } | MrMsg::ValReply { .. } | MrMsg::StoreAck { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: NoTimer, _fx: &mut Effects<MrMsg, NoTimer>) {
        match timer {}
    }

    fn msg_wire_bytes(msg: &MrMsg) -> usize {
        msg.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::Register;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, simulate_full, SimConfig};
    use lintime_sim::faults::FaultPlan;
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::{ModelParams, Time};

    fn params5() -> ModelParams {
        ModelParams::new(5, Time(6000), Time(2400), Time(1800))
    }

    fn mk(spec: &Arc<dyn ObjectSpec>, n: usize) -> impl FnMut(Pid) -> MrNode + '_ {
        move |pid| MrNode::new(pid, Arc::clone(spec), n)
    }

    #[test]
    fn timestamps_order_lexicographically() {
        let a = MrTs { seq: 1, pid: Pid(3) };
        let b = MrTs { seq: 2, pid: Pid(0) };
        let c = MrTs { seq: 2, pid: Pid(1) };
        assert!(a < b && b < c);
        assert!(MrTs::INITIAL < a);
    }

    #[test]
    fn write_then_read_round_trips_and_latencies() {
        let p = params5();
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 42)).at(
                Pid(1),
                Time(100_000),
                Invocation::nullary("read"),
            ),
        );
        let (run, nodes) = simulate_full(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        // Write: two quorum round trips of d each way = 4d.
        assert_eq!(run.ops[0].latency(), Some(p.d * 4));
        // Quiescent read: all replicas agree, one round trip = 2d.
        assert_eq!(run.ops[1].latency(), Some(p.d * 2));
        assert_eq!(run.ops[1].ret, Some(Value::Int(42)));
        assert_eq!(nodes[1].fast_reads(), 1);
        assert_eq!(nodes[1].read_writebacks(), 0);
        assert_eq!(nodes[0].round_trips(), 2);
    }

    #[test]
    fn read_of_initial_value_is_fast() {
        let spec = erase(Register::new(7));
        let p = params5();
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(Schedule::new().at(
            Pid(2),
            Time(0),
            Invocation::nullary("read"),
        ));
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete());
        assert_eq!(run.ops[0].ret, Some(Value::Int(7)));
        assert_eq!(run.ops[0].latency(), Some(p.d * 2));
    }

    #[test]
    fn survives_minority_crashes() {
        let p = params5();
        let spec = erase(Register::new(0));
        // Two of five replicas crash before the workload even starts:
        // majorities of the three survivors must still commit every op.
        let plan = FaultPlan::new(11).crash(Pid(3), Time(1)).crash(Pid(4), Time(1));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_faults(plan).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("write", 5))
                .at(Pid(1), Time(50_000), Invocation::new("write", 6))
                .at(Pid(2), Time(100_000), Invocation::nullary("read")),
        );
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "a majority is alive, every op must finish: {run}");
        assert!(!run.truncated);
        assert_eq!(run.ops[2].ret, Some(Value::Int(6)));
        assert_eq!(run.crashed_pending, 0);
    }

    #[test]
    fn majority_crash_blocks_instead_of_lying() {
        let p = params5();
        let spec = erase(Register::new(0));
        // Three of five crash: no quorum exists, so the write must hang
        // (pending forever), never respond with an uncommitted value.
        let plan =
            FaultPlan::new(11).crash(Pid(2), Time(1)).crash(Pid(3), Time(1)).crash(Pid(4), Time(1));
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(plan)
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 5)));
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(!run.complete());
        assert_eq!(run.pending().count(), 1);
    }

    #[test]
    fn concurrent_writes_agree_on_a_total_order() {
        let p = params5();
        let spec = erase(Register::new(0));
        // All five write concurrently, then all five read after quiescence:
        // every read must return the same (highest-timestamped) value.
        let mut sched = Schedule::new();
        for i in 0..5 {
            sched = sched.at(Pid(i), Time(10 * i as i64), Invocation::new("write", 10 + i as i64));
        }
        for i in 0..5 {
            sched = sched.at(Pid(i), Time(200_000), Invocation::nullary("read"));
        }
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 9 }).with_schedule(sched);
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        let reads: BTreeSet<_> =
            run.ops.iter().filter(|o| o.invocation.op == "read").map(|o| o.ret.clone()).collect();
        assert_eq!(reads.len(), 1, "diverging reads after quiescence: {run}");
    }

    #[test]
    fn duplicated_replies_cannot_fake_a_quorum() {
        let p = params5();
        let spec = erase(Register::new(0));
        // Crash two replicas and duplicate every message: duplicates from
        // the three live peers must not be double-counted, and the run must
        // still complete correctly off the true quorum.
        let plan =
            FaultPlan::new(5).crash(Pid(3), Time(1)).crash(Pid(4), Time(1)).duplicate_all(1.0);
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_faults(plan).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 9)).at(
                Pid(1),
                Time(100_000),
                Invocation::nullary("read"),
            ),
        );
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[1].ret, Some(Value::Int(9)));
    }

    #[test]
    fn single_process_cluster_is_its_own_quorum() {
        // The engine requires n ≥ 2, so drive the node handlers directly:
        // with n = 1 the local replica alone is a majority and both phases
        // complete inside `on_invoke`, with no messages sent.
        let spec = erase(Register::new(0));
        let mut node = MrNode::new(Pid(0), Arc::clone(&spec), 1);

        let mut fx = Effects::new(Pid(0), 1, Time(0));
        node.on_invoke(Invocation::new("write", 3), &mut fx);
        let parts = fx.into_parts();
        assert!(parts.sends.is_empty());
        assert_eq!(parts.response, Some(Value::Unit));

        let mut fx = Effects::new(Pid(0), 1, Time(10));
        node.on_invoke(Invocation::nullary("read"), &mut fx);
        let parts = fx.into_parts();
        assert!(parts.sends.is_empty());
        assert_eq!(parts.response, Some(Value::Int(3)));
    }

    #[test]
    fn observed_node_counts_quorum_metrics() {
        let p = params5();
        let spec = erase(Register::new(0));
        let (obs, _ring) = Obs::ring(1024);
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 1)).at(
                Pid(1),
                Time(100_000),
                Invocation::nullary("read"),
            ))
            .with_obs(obs.clone());
        let run = simulate(&cfg, |pid| {
            MrNode::new(pid, Arc::clone(&spec), p.n).with_obs(cfg.obs.clone())
        });
        assert!(run.complete());
        // Write = 2 round trips, fast read = 1.
        assert_eq!(obs.metrics.counter("mr.quorum_round_trips").get(), 3);
        assert_eq!(obs.metrics.counter("mr.fast_reads").get(), 1);
        assert_eq!(obs.metrics.counter("mr.read_writebacks").get(), 0);
    }

    #[test]
    #[should_panic(expected = "read/write register")]
    fn non_register_spec_is_refused() {
        let spec = erase(lintime_adt::types::FifoQueue::new());
        let _ = MrNode::new(Pid(0), spec, 4);
    }
}
