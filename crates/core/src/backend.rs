//! A uniform `Backend` abstraction over every implementation in this crate.
//!
//! The paper's Algorithm 1 and the folklore baselines assume reliable
//! channels and crash-free processes; the quorum register
//! ([`crate::mr_register`]) and the recovery wrapper ([`crate::reliable`])
//! each relax a different part of that assumption. This module makes those
//! differences *declarative*: every backend states the fault classes it
//! claims to survive ([`FaultTolerance`]), and [`run_backend`] drives any of
//! them through the simulator uniformly, folding backend-specific
//! bookkeeping (recovery-layer suspects, quorum metrics) into one
//! [`BackendRun`].
//!
//! The availability matrix in `lintime-bench` sweeps
//! scenario × backend cells and uses the tolerance claims to decide which
//! cells *must* stay linearizable: a `NotLinearizable` verdict inside a
//! claimed-tolerated cell on a non-suspect run is a confirmed violation.

use crate::cluster::{Algorithm, AnyNode};
use lintime_adt::spec::{ObjectSpec, SpecKind};
use lintime_obs::Obs;
use lintime_sim::engine::{simulate_full, SimConfig};
use lintime_sim::run::Run;
use lintime_sim::time::{ModelParams, Pid};
use std::fmt;
use std::sync::Arc;

/// The fault classes a backend claims to survive *without* losing
/// linearizability or availability (completed operations may slow down, but
/// must not return wrong values, and non-crashed invokers must still get
/// responses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTolerance {
    /// Maximum number of process crashes tolerated.
    pub crashes: usize,
    /// Survives message omission (drops).
    pub omission: bool,
    /// Survives message duplication.
    pub duplication: bool,
    /// Survives bounded process stalls (delivery-window pauses).
    pub stalls: bool,
}

impl FaultTolerance {
    /// No tolerance claims at all.
    pub const NONE: FaultTolerance =
        FaultTolerance { crashes: 0, omission: false, duplication: false, stalls: false };

    /// Human-readable summary, e.g. `"crashes≤2 +dup +stall"`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.crashes > 0 {
            parts.push(format!("crashes≤{}", self.crashes));
        }
        if self.omission {
            parts.push("+drop".to_string());
        }
        if self.duplication {
            parts.push("+dup".to_string());
        }
        if self.stalls {
            parts.push("+stall".to_string());
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// A runnable shared-object implementation: something that can build a node
/// per process and declare what faults it survives.
///
/// Implemented by [`Algorithm`]; the trait exists so drivers (simulator
/// sweeps, the live runtime router, the availability matrix) can treat all
/// implementations — and future ones — uniformly.
pub trait Backend {
    /// Human-readable label for reports.
    fn label(&self) -> String;

    /// Build the node for process `pid`, attaching `obs` where the backend
    /// exports metrics.
    fn make_node(
        &self,
        pid: Pid,
        spec: &Arc<dyn ObjectSpec>,
        params: ModelParams,
        obs: &Obs,
    ) -> AnyNode;

    /// The fault classes this backend claims to survive in a cluster of
    /// `params.n` processes.
    fn tolerance(&self, params: ModelParams) -> FaultTolerance;

    /// Whether this backend can implement `spec` at all (e.g. the quorum
    /// register only implements read/write registers).
    fn supports(&self, spec: &Arc<dyn ObjectSpec>) -> Result<(), String> {
        let _ = spec;
        Ok(())
    }
}

impl Backend for Algorithm {
    fn label(&self) -> String {
        Algorithm::label(self)
    }

    fn make_node(
        &self,
        pid: Pid,
        spec: &Arc<dyn ObjectSpec>,
        params: ModelParams,
        obs: &Obs,
    ) -> AnyNode {
        AnyNode::build_observed(*self, pid, Arc::clone(spec), params, obs)
    }

    fn tolerance(&self, params: ModelParams) -> FaultTolerance {
        match self {
            // Algorithm 1 assumes reliable channels, live processes, and
            // honest timers; stalls break its timer-based ordering windows.
            // The batching wrapper only re-times announcements (within the
            // stretched waits), so it inherits the same claims.
            Algorithm::Wtlw { .. } | Algorithm::WtlwWaits(_) | Algorithm::BatchedWtlw { .. } => {
                FaultTolerance::NONE
            }
            // The coordinator and the broadcast quorum wait for *messages*,
            // not timers, so a stalled process only delays; but a single
            // crash (coordinator / any acker) wedges them, and lost or
            // duplicated messages wedge or reorder them.
            Algorithm::Centralized | Algorithm::Broadcast => {
                FaultTolerance { stalls: true, ..FaultTolerance::NONE }
            }
            // Majority quorums: up to ⌊(n−1)/2⌋ crashes; duplicate replies
            // are idempotent (quorums are sets); message-driven, so stalls
            // only delay. The per-key composition inherits the register's
            // envelope wholesale.
            Algorithm::MrRegister | Algorithm::AbdKv => FaultTolerance {
                crashes: params.n.saturating_sub(1) / 2,
                duplication: true,
                stalls: true,
                ..FaultTolerance::NONE
            },
            // Same quorum machinery, but the response values of mixed ops
            // and accessors come from a *stability* wait whose delivery
            // bound a stalled client's delayed commit broadcast violates —
            // so no stall claim.
            Algorithm::QuorumSm => FaultTolerance {
                crashes: params.n.saturating_sub(1) / 2,
                duplication: true,
                ..FaultTolerance::NONE
            },
            // Retransmission recovers drops; the dedup layer suppresses
            // duplicates. Timer-driven inner node → stalls still break it.
            Algorithm::ReliableWtlw { .. } => {
                FaultTolerance { omission: true, duplication: true, ..FaultTolerance::NONE }
            }
            // The strawman is incorrect even fault-free.
            Algorithm::NaiveLocal(_) => FaultTolerance::NONE,
        }
    }

    fn supports(&self, spec: &Arc<dyn ObjectSpec>) -> Result<(), String> {
        match self {
            Algorithm::MrRegister if spec.kind() != SpecKind::Register => {
                Err(format!("mr-register implements a read/write register, not {:?}", spec.kind()))
            }
            Algorithm::AbdKv if spec.kind() != SpecKind::KvStore => {
                Err(format!("abd-kv implements a kv-store, not {:?}", spec.kind()))
            }
            _ => Ok(()),
        }
    }
}

/// A backend × spec combination the backend cannot implement, reported by
/// [`run_backend`] instead of running. The availability matrix renders these
/// as honest `n/a` cells rather than crashing the whole sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedSpec {
    /// The refusing backend's label.
    pub backend: String,
    /// The spec's type name.
    pub spec: String,
    /// The backend's own explanation.
    pub why: String,
}

impl fmt::Display for UnsupportedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backend {} cannot run {}: {}", self.backend, self.spec, self.why)
    }
}

impl std::error::Error for UnsupportedSpec {}

/// A [`run_backend`] result: the recorded run plus backend-specific
/// aggregates (zero for backends without them).
#[derive(Debug)]
pub struct BackendRun {
    /// The simulated run. For [`Algorithm::ReliableWtlw`], every node's
    /// detected violations have been folded into [`Run::suspect`].
    pub run: Run,
    /// Completed quorum phases across all quorum-backend nodes
    /// ([`Algorithm::MrRegister`], [`Algorithm::QuorumSm`],
    /// [`Algorithm::AbdKv`]).
    pub quorum_round_trips: u64,
    /// Reads answered in one round trip (uniform quorum timestamps).
    pub fast_reads: u64,
    /// Reads that needed the write-back phase before responding.
    pub read_writebacks: u64,
}

/// Run `backend` over `spec` under `cfg`: simulate, then fold
/// backend-specific node state into the result uniformly.
///
/// Returns [`UnsupportedSpec`] (without simulating anything) when
/// `backend.supports(spec)` fails, so callers probing arbitrary
/// backend × type combinations can render honest `n/a` cells.
pub fn run_backend(
    backend: &dyn Backend,
    spec: &Arc<dyn ObjectSpec>,
    cfg: &SimConfig,
) -> Result<BackendRun, UnsupportedSpec> {
    if let Err(why) = backend.supports(spec) {
        return Err(UnsupportedSpec {
            backend: backend.label(),
            spec: spec.name().to_string(),
            why,
        });
    }
    let (mut run, nodes) =
        simulate_full(cfg, |pid| backend.make_node(pid, spec, cfg.params, &cfg.obs));
    let mut quorum_round_trips = 0;
    let mut fast_reads = 0;
    let mut read_writebacks = 0;
    for node in &nodes {
        match node {
            AnyNode::Rel(n) => run.suspect.extend(n.violations().iter().cloned()),
            AnyNode::Mr(n) => {
                quorum_round_trips += n.round_trips();
                fast_reads += n.fast_reads();
                read_writebacks += n.read_writebacks();
            }
            AnyNode::Qsm(n) => {
                quorum_round_trips += n.round_trips();
                fast_reads += n.fast_reads();
                read_writebacks += n.read_writebacks();
            }
            AnyNode::Abd(n) => {
                quorum_round_trips += n.round_trips();
                fast_reads += n.fast_reads();
                read_writebacks += n.read_writebacks();
            }
            _ => {}
        }
    }
    Ok(BackendRun { run, quorum_round_trips, fast_reads, read_writebacks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::{erase, Invocation};
    use lintime_adt::types::{FifoQueue, Register};
    use lintime_adt::value::Value;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::faults::FaultPlan;
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::{ModelParams, Time};

    fn params5() -> ModelParams {
        ModelParams::new(5, Time(6000), Time(2400), Time(1800))
    }

    #[test]
    fn tolerance_claims_are_declared() {
        let p = params5();
        let mr = Algorithm::MrRegister.tolerance(p);
        assert_eq!(mr.crashes, 2);
        assert!(mr.stalls && mr.duplication && !mr.omission);
        assert_eq!(Algorithm::Wtlw { x: Time::ZERO }.tolerance(p), FaultTolerance::NONE);
        let rel = Algorithm::ReliableWtlw {
            x: Time::ZERO,
            recovery: crate::reliable::RecoveryConfig::standard(p),
        }
        .tolerance(p);
        assert!(rel.omission && rel.duplication && !rel.stalls);
        assert_eq!(mr.summary(), "crashes≤2 +dup +stall");
        assert_eq!(FaultTolerance::NONE.summary(), "none");
        let qsm = Algorithm::QuorumSm.tolerance(p);
        assert_eq!(qsm.crashes, 2);
        assert!(qsm.duplication && !qsm.stalls && !qsm.omission);
        assert_eq!(Algorithm::AbdKv.tolerance(p), mr);
    }

    #[test]
    fn mr_register_refuses_non_register_specs() {
        let queue = erase(FifoQueue::new());
        assert!(Algorithm::MrRegister.supports(&queue).is_err());
        let reg = erase(Register::new(0));
        assert!(Algorithm::MrRegister.supports(&reg).is_ok());
        assert!(Algorithm::Centralized.supports(&queue).is_ok());
        // The state machine supports everything; the composition only kv.
        assert!(Algorithm::QuorumSm.supports(&queue).is_ok());
        assert!(Algorithm::QuorumSm.supports(&reg).is_ok());
        assert!(Algorithm::AbdKv.supports(&queue).is_err());
        assert!(Algorithm::AbdKv.supports(&erase(lintime_adt::types::KvStore::new())).is_ok());
    }

    #[test]
    fn unsupported_combos_return_structured_errors() {
        let p = params5();
        let queue = erase(FifoQueue::new());
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(Schedule::new().at(
            Pid(0),
            Time(0),
            Invocation::new("enqueue", 1),
        ));
        let err = run_backend(&Algorithm::MrRegister, &queue, &cfg)
            .expect_err("a queue is not a register");
        assert_eq!(err.backend, "mr-register");
        assert_eq!(err.spec, "fifo-queue");
        assert!(err.to_string().contains("cannot run"), "{err}");
        let err = run_backend(&Algorithm::AbdKv, &queue, &cfg).expect_err("a queue is not a kv");
        assert_eq!(err.backend, "abd-kv");
    }

    #[test]
    fn run_backend_aggregates_quorum_metrics() {
        let p = params5();
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 9)).at(
                Pid(1),
                Time(60_000),
                Invocation::nullary("read"),
            ),
        );
        let out = run_backend(&Algorithm::MrRegister, &spec, &cfg).expect("register supported");
        assert!(out.run.complete(), "{}", out.run);
        assert_eq!(out.run.ops[1].ret, Some(Value::Int(9)));
        // Write = 2 phases, quiescent read = 1 fast phase.
        assert_eq!(out.quorum_round_trips, 3);
        assert_eq!(out.fast_reads, 1);
        assert_eq!(out.read_writebacks, 0);
        assert!(out.run.msgs_sent > 0 && out.run.bytes_sent > out.run.msgs_sent);
    }

    #[test]
    fn run_backend_survives_tolerated_crashes() {
        let p = params5();
        let spec = erase(Register::new(0));
        let crashes = Algorithm::MrRegister.tolerance(p).crashes;
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 3)).at(
                Pid(1),
                Time(60_000),
                Invocation::nullary("read"),
            ))
            .with_faults(FaultPlan::new(1).crash(Pid(3), Time(10)).crash(Pid(4), Time(10)));
        assert_eq!(crashes, 2);
        let out = run_backend(&Algorithm::MrRegister, &spec, &cfg).expect("register supported");
        assert!(out.run.complete(), "{}", out.run);
        assert_eq!(out.run.ops[1].ret, Some(Value::Int(3)));
    }
}
