//! Tick-batched mutator broadcasts for Algorithm 1.
//!
//! Every mutator (and mixed operation) of [`WtlwNode`] announces itself to
//! all peers the instant it is invoked — one `n − 1`-way broadcast per
//! operation. At serving scale that per-operation fan-out dominates the
//! communication bill. [`BatchWtlwNode`] wraps a [`WtlwNode`] and **batches**
//! those announcements: outgoing `WtlwMsg`s buffer locally and are flushed as
//! a single [`BatchMsg`] per peer at the next *tick boundary* — a multiple of
//! the batch tick `B` on the local clock.
//!
//! ## Why this stays linearizable
//!
//! An announcement invoked at local time `t` leaves at the next boundary,
//! i.e. at most `B` late, so its worst-case arrival moves from `t + d` to
//! `t + B + d`. That is exactly the lateness profile of the recovery layer's
//! retransmitted messages ([`crate::reliable`]), and the same fix applies:
//! run the inner node with two waits stretched by `B`
//! ([`batched_waits`]) —
//!
//! * `execute = u + ε + B`: a queued mutator waits long enough that no
//!   smaller-timestamped announcement (up to `B` late) can still arrive;
//! * `aop_respond = (d − X) + B`: an accessor waits long enough to have
//!   received every mutator its backdated timestamp must order after.
//!
//! Timestamp backdating and the pure-mutator ack (`X + ε`) are unchanged —
//! neither depends on message arrival. The per-class envelopes become
//! `|AOP| = d − X + B`, `|MOP| = X + ε`, `|OOP| = d + ε + B`: batching
//! trades bounded accessor/mixed latency for an `×(ops per tick)` reduction
//! in messages, and pure mutators pay nothing.

use crate::timestamp::Timestamp;
use crate::wtlw::{Waits, WtlwMsg, WtlwNode, WtlwTimer};
use lintime_adt::spec::{Invocation, OpClass};
use lintime_obs::Obs;
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::{ModelParams, Pid, Time};
use std::sync::Arc;

/// The paper's standard waits for tradeoff parameter `x`, with `execute` and
/// `aop_respond` stretched by the batch tick so announcements delayed up to
/// one tick still order correctly (see the module docs).
pub fn batched_waits(params: ModelParams, x: Time, tick: Time) -> Waits {
    assert!(tick >= Time::ZERO, "batch tick must be non-negative");
    let mut w = Waits::standard(params, x);
    w.execute += tick;
    w.aop_respond += tick;
    w
}

/// The batched algorithm's worst-case response time for `class` under
/// parameter `x` and batch tick `tick`: `d − X + B`, `X + ε`, or `d + ε + B`.
pub fn batched_predicted_latency(params: ModelParams, x: Time, tick: Time, class: OpClass) -> Time {
    match class {
        OpClass::PureAccessor => params.d - x + tick,
        OpClass::PureMutator => x + params.epsilon,
        OpClass::Mixed => params.d + params.epsilon + tick,
    }
}

/// Message of the batching layer: every announcement the sender buffered
/// since its previous tick boundary, in invocation order.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchMsg {
    /// The batched mutator announcements.
    pub anns: Vec<WtlwMsg>,
}

impl BatchMsg {
    /// Estimated serialized size in bytes: a 2-byte count header plus the
    /// announcements — the framing overhead is paid once per batch instead
    /// of once per announcement.
    pub fn wire_bytes(&self) -> usize {
        2 + self.anns.iter().map(WtlwMsg::wire_bytes).sum::<usize>()
    }
}

/// Timer tags of the batching layer.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchTimer {
    /// A timer of the wrapped algorithm.
    Inner(WtlwTimer),
    /// Flush the announcement buffer (fires at a tick boundary).
    Flush,
}

/// Pre-registered metric handles, built once per node when observability is
/// active (see [`BatchWtlwNode::with_obs`]).
struct BatchMetrics {
    flushes: lintime_obs::Counter,
    announcements: lintime_obs::Counter,
    batch_size: lintime_obs::Histogram,
}

impl BatchMetrics {
    fn register(obs: &Obs) -> BatchMetrics {
        let r = &obs.metrics;
        BatchMetrics {
            flushes: r.counter("batch.flushes"),
            announcements: r.counter("batch.announcements"),
            batch_size: r.histogram("batch.size", &[1, 2, 4, 8, 16, 32, 64]),
        }
    }
}

/// [`WtlwNode`] wrapped in the tick-batching layer.
pub struct BatchWtlwNode {
    tick: Time,
    inner: WtlwNode,
    /// Announcements buffered since the last flush, in invocation order.
    buffer: Vec<WtlwMsg>,
    flush_scheduled: bool,
    flushes: u64,
    announcements: u64,
    metrics: Option<BatchMetrics>,
}

impl BatchWtlwNode {
    /// A batching node for tradeoff parameter `x` and batch tick `tick`.
    /// The inner node runs with [`batched_waits`]; `tick = 0` disables
    /// batching entirely (announcements pass through unbuffered and the
    /// waits are the paper's standard ones).
    pub fn new(
        pid: Pid,
        spec: Arc<dyn lintime_adt::spec::ObjectSpec>,
        params: ModelParams,
        x: Time,
        tick: Time,
    ) -> Self {
        let inner = WtlwNode::with_waits(pid, spec, batched_waits(params, x, tick));
        BatchWtlwNode {
            tick,
            inner,
            buffer: Vec::new(),
            flush_scheduled: false,
            flushes: 0,
            announcements: 0,
            metrics: None,
        }
    }

    /// Attach an observability bundle: flushes and batched announcement
    /// counts become `batch.*` counters and a `batch.size` histogram.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.metrics = obs.is_active().then(|| BatchMetrics::register(&obs));
        self
    }

    /// Number of batch flushes (broadcasts) this node performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of announcements this node sent through batches.
    pub fn announcements(&self) -> u64 {
        self.announcements
    }

    /// The wrapped Algorithm-1 node.
    pub fn inner(&self) -> &WtlwNode {
        &self.inner
    }

    /// Run an inner-node handler, buffer any announcements it broadcast, and
    /// translate the remaining effects into the wrapper's types.
    fn dispatch(
        &mut self,
        fx: &mut Effects<BatchMsg, BatchTimer>,
        f: impl FnOnce(&mut WtlwNode, &mut Effects<WtlwMsg, WtlwTimer>),
    ) {
        let mut inner_fx: Effects<WtlwMsg, WtlwTimer> =
            Effects::new(fx.pid(), fx.n(), fx.local_time());
        f(&mut self.inner, &mut inner_fx);
        let mut parts = inner_fx.into_parts();
        if self.tick > Time::ZERO {
            // The inner node only ever broadcasts (one send per peer, same
            // payload); buffer each distinct announcement once — the flush
            // re-broadcasts the whole batch to every peer.
            let mut seen_ts: Option<Timestamp> = self.buffer.last().map(|m| m.ts);
            for (_, m) in parts.sends.drain(..) {
                if seen_ts != Some(m.ts) {
                    seen_ts = Some(m.ts);
                    self.buffer.push(m);
                }
            }
            if !self.buffer.is_empty() && !self.flush_scheduled {
                // Flush at the next tick boundary strictly after now.
                let b = self.tick.as_ticks();
                let rem = fx.local_time().as_ticks().rem_euclid(b);
                fx.set_timer(Time(b - rem), BatchTimer::Flush);
                self.flush_scheduled = true;
            }
        }
        fx.absorb(parts, |m| BatchMsg { anns: vec![m] }, BatchTimer::Inner);
    }
}

impl Node for BatchWtlwNode {
    type Msg = BatchMsg;
    type Timer = BatchTimer;

    fn msg_wire_bytes(msg: &BatchMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<BatchMsg, BatchTimer>) {
        self.dispatch(fx, |inner, ifx| inner.on_invoke(inv, ifx));
    }

    fn on_deliver(&mut self, from: Pid, msg: BatchMsg, fx: &mut Effects<BatchMsg, BatchTimer>) {
        for ann in msg.anns {
            self.dispatch(fx, |inner, ifx| inner.on_deliver(from, ann, ifx));
        }
    }

    fn on_timer(&mut self, timer: BatchTimer, fx: &mut Effects<BatchMsg, BatchTimer>) {
        match timer {
            BatchTimer::Inner(t) => self.dispatch(fx, |inner, ifx| inner.on_timer(t, ifx)),
            BatchTimer::Flush => {
                self.flush_scheduled = false;
                if self.buffer.is_empty() {
                    return;
                }
                let anns = std::mem::take(&mut self.buffer);
                self.flushes += 1;
                self.announcements += anns.len() as u64;
                if let Some(m) = &self.metrics {
                    m.flushes.inc();
                    m.announcements.add(anns.len() as u64);
                    m.batch_size.observe(anns.len() as u64);
                }
                fx.broadcast(BatchMsg { anns });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_algorithm, Algorithm};
    use lintime_adt::spec::{erase, ObjectSpec};
    use lintime_adt::types::{FifoQueue, Register, RmwRegister};
    use lintime_adt::value::Value;
    use lintime_check::history::History;
    use lintime_check::monitor::check_fast;
    use lintime_check::wing_gong::Verdict;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::SimConfig;
    use lintime_sim::schedule::Schedule;

    fn params() -> ModelParams {
        ModelParams::default_experiment()
    }

    #[test]
    fn batched_waits_stretch_execute_and_aop_only() {
        let p = params();
        let x = Time(1200);
        let b = Time(600);
        let w = batched_waits(p, x, b);
        let base = Waits::standard(p, x);
        assert_eq!(w.execute, base.execute + b);
        assert_eq!(w.aop_respond, base.aop_respond + b);
        assert_eq!(w.aop_backdate, base.aop_backdate);
        assert_eq!(w.mop_respond, base.mop_respond);
        assert_eq!(w.add, base.add);
        assert_eq!(batched_waits(p, x, Time::ZERO), base);
    }

    #[test]
    fn predicted_latencies_follow_the_stretched_envelope() {
        let p = params();
        let (x, b) = (Time(1200), Time(600));
        assert_eq!(batched_predicted_latency(p, x, b, OpClass::PureAccessor), p.d - x + b);
        assert_eq!(batched_predicted_latency(p, x, b, OpClass::PureMutator), x + p.epsilon);
        assert_eq!(batched_predicted_latency(p, x, b, OpClass::Mixed), p.d + p.epsilon + b);
    }

    #[test]
    fn write_read_round_trip_with_batching() {
        let p = params();
        let tick = Time(600);
        let algo = Algorithm::BatchedWtlw { x: Time::ZERO, tick };
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 42)).at(
                Pid(1),
                Time(30_000),
                Invocation::nullary("read"),
            ),
        );
        let run = run_algorithm(algo, &spec, &cfg);
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        // Pure mutator ack is unchanged; the accessor pays the extra tick.
        assert_eq!(run.ops[0].latency(), Some(p.epsilon));
        assert_eq!(run.ops[1].latency(), Some(p.d + tick));
        assert_eq!(run.ops[1].ret, Some(Value::Int(42)));
    }

    #[test]
    fn batching_reduces_messages_per_op() {
        let p = params();
        let spec = erase(Register::new(0));
        // Five back-to-back writes through one process's ingress queue, each
        // responding after X + ε = 1800: all invocations land inside one
        // 10000-tick batch window.
        let mut sched = Schedule::new();
        for i in 0..5 {
            sched = sched.arrival(Pid(0), Time(i), Invocation::new("write", i));
        }
        let mk_cfg = || SimConfig::new(p, DelaySpec::AllMax).with_schedule(sched.clone());
        let plain = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &mk_cfg());
        let batched = run_algorithm(
            Algorithm::BatchedWtlw { x: Time::ZERO, tick: Time(10_000) },
            &spec,
            &mk_cfg(),
        );
        assert!(plain.complete() && batched.complete());
        // Plain: 5 broadcasts × 3 peers = 15 messages. Batched: all five
        // announcements flush in one batch — 3 messages.
        assert_eq!(plain.msgs_sent, 15);
        assert_eq!(batched.msgs_sent, 3);
        // Both orders agree: a late read sees the last write either way.
        let read = |run: &lintime_sim::run::Run| run.ops.last().unwrap().ret.clone();
        let check = SimConfig::new(p, DelaySpec::AllMax).with_schedule(sched.clone().at(
            Pid(1),
            Time(60_000),
            Invocation::nullary("read"),
        ));
        let plain = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &check);
        let batched = run_algorithm(
            Algorithm::BatchedWtlw { x: Time::ZERO, tick: Time(10_000) },
            &spec,
            &check,
        );
        assert_eq!(read(&plain), Some(Value::Int(4)));
        assert_eq!(read(&batched), Some(Value::Int(4)));
    }

    #[test]
    fn batched_runs_stay_linearizable() {
        let p = params();
        for (spec, sched) in [
            (
                erase(FifoQueue::new()) as Arc<dyn ObjectSpec>,
                Schedule::new()
                    .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
                    .at(Pid(1), Time(5), Invocation::new("enqueue", 2))
                    .at(Pid(2), Time(25_000), Invocation::nullary("dequeue"))
                    .at(Pid(3), Time(50_000), Invocation::nullary("dequeue")),
            ),
            (
                erase(RmwRegister::new(0)) as Arc<dyn ObjectSpec>,
                Schedule::new()
                    .at(Pid(0), Time(0), Invocation::new("rmw", 1))
                    .at(Pid(1), Time(5), Invocation::new("rmw", 1))
                    .at(Pid(2), Time(25_000), Invocation::nullary("read")),
            ),
        ] {
            for delay in
                [DelaySpec::AllMax, DelaySpec::AllMin, DelaySpec::UniformRandom { seed: 9 }]
            {
                let cfg = SimConfig::new(p, delay).with_schedule(sched.clone());
                let run = run_algorithm(
                    Algorithm::BatchedWtlw { x: Time(1200), tick: Time(600) },
                    &spec,
                    &cfg,
                );
                assert!(run.complete(), "{run}");
                let h = History::from_run(&run).expect("complete run");
                assert!(
                    matches!(check_fast(&spec, &h), Verdict::Linearizable(_)),
                    "batched run must stay linearizable: {run}"
                );
            }
        }
    }

    #[test]
    fn zero_tick_is_passthrough() {
        let p = params();
        let spec = erase(Register::new(0));
        let sched = Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 7)).at(
            Pid(1),
            Time(20_000),
            Invocation::nullary("read"),
        );
        let mk_cfg = || SimConfig::new(p, DelaySpec::AllMax).with_schedule(sched.clone());
        let plain = run_algorithm(Algorithm::Wtlw { x: Time(600) }, &spec, &mk_cfg());
        let zero = run_algorithm(
            Algorithm::BatchedWtlw { x: Time(600), tick: Time::ZERO },
            &spec,
            &mk_cfg(),
        );
        assert_eq!(plain.ops[0].latency(), zero.ops[0].latency());
        assert_eq!(plain.ops[1].latency(), zero.ops[1].latency());
        assert_eq!(plain.ops[1].ret, zero.ops[1].ret);
        // Unbatched announcements, but wrapped per-message: same count.
        assert_eq!(plain.msgs_sent, zero.msgs_sent);
    }

    #[test]
    fn observed_batching_counts_flushes_and_sizes() {
        let p = params();
        let spec = erase(Register::new(0));
        let (obs, _ring) = Obs::ring(64);
        let mut sched = Schedule::new();
        for i in 0..3 {
            sched = sched.arrival(Pid(0), Time(i), Invocation::new("write", i));
        }
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(sched).with_obs(obs.clone());
        let run = run_algorithm(
            Algorithm::BatchedWtlw { x: Time::ZERO, tick: Time(10_000) },
            &spec,
            &cfg,
        );
        assert!(run.complete(), "{run}");
        assert_eq!(obs.metrics.counter("batch.flushes").get(), 1);
        assert_eq!(obs.metrics.counter("batch.announcements").get(), 3);
        let sizes = obs.metrics.histogram("batch.size", &[1, 2, 4, 8, 16, 32, 64]).snapshot();
        assert_eq!(sizes.count(), 1);
        assert_eq!(sizes.mean(), Some(3.0));
    }
}
