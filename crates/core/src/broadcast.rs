//! Folklore baseline 2 (Section 1): replicate via total-order broadcast.
//!
//! "Have each process use a total order broadcast primitive to notify all
//! other processes when it invokes an operation; whenever a broadcast message
//! arrives at a process, it updates a local copy of the object accordingly.
//! However, this second method is not faster than the centralized scheme when
//! taking into account the time overhead to implement the totally ordered
//! broadcast on top of a point-to-point message system."
//!
//! We implement exactly that overhead: Lamport-clock total-order multicast
//! (requests + acknowledgements). An operation is delivered — and, if local,
//! responded to — once it heads the queue and every process has been heard
//! from with a larger Lamport time, which takes ≈ `2d`: one delay for the
//! request to spread, one for the acknowledgements to return. Unlike
//! Algorithm 1 this uses no synchronized clocks, so its latency cannot be
//! traded against `ε`.
//!
//! Point-to-point channels in the model are not FIFO (independent delays per
//! message), so a sequence-number reordering layer per sender is included —
//! part of the real cost of a broadcast primitive over point-to-point links.

use lintime_adt::spec::{Invocation, ObjState, ObjectSpec};
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::Pid;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lamport-timestamped payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// An operation announcement.
    Request {
        /// Lamport time of the announcement.
        lc: u64,
        /// The announced invocation.
        inv: Invocation,
    },
    /// A bare clock carrier acknowledging receipt.
    Ack {
        /// Lamport time of the acknowledgement.
        lc: u64,
    },
}

/// A sender-sequenced message (FIFO layer over non-FIFO channels).
#[derive(Clone, Debug, PartialEq)]
pub struct BcastMsg {
    /// Per-sender sequence number.
    pub seq: u64,
    /// The Lamport-timestamped payload.
    pub payload: Payload,
}

impl BcastMsg {
    /// Estimated serialized size in bytes: 8-byte sequence number, tag,
    /// 8-byte Lamport clock, and the invocation for requests.
    pub fn wire_bytes(&self) -> usize {
        9 + match &self.payload {
            Payload::Request { inv, .. } => 8 + inv.wire_bytes(),
            Payload::Ack { .. } => 8,
        }
    }
}

/// Timer type (the broadcast algorithm needs no timers).
#[derive(Clone, Debug, PartialEq)]
pub enum NoTimer {}

/// One process of the total-order-broadcast replica algorithm.
pub struct BroadcastNode {
    pid: Pid,
    spec: Arc<dyn ObjectSpec>,
    object: Box<dyn ObjState>,
    /// Lamport clock.
    lc: u64,
    /// Pending totally-ordered operations, keyed by `(lamport, pid)`.
    queue: BTreeMap<(u64, usize), Invocation>,
    /// Largest Lamport value heard from each process.
    heard: Vec<u64>,
    /// Key of the locally-invoked operation awaiting delivery.
    pending: Option<(u64, usize)>,
    /// FIFO reordering: next expected seq and buffered out-of-order messages,
    /// per sender.
    next_seq: Vec<u64>,
    buffered: Vec<BTreeMap<u64, Payload>>,
    /// Per-destination send sequence counters.
    send_seq: Vec<u64>,
}

impl BroadcastNode {
    /// Create a node for a cluster of `n` processes.
    pub fn new(pid: Pid, n: usize, spec: Arc<dyn ObjectSpec>) -> Self {
        let object = spec.new_object();
        BroadcastNode {
            pid,
            spec,
            object,
            lc: 0,
            queue: BTreeMap::new(),
            heard: vec![0; n],
            pending: None,
            next_seq: vec![0; n],
            buffered: vec![BTreeMap::new(); n],
            send_seq: vec![0; n],
        }
    }

    fn tick(&mut self) -> u64 {
        self.lc += 1;
        self.heard[self.pid.0] = self.lc;
        self.lc
    }

    fn send_all(&mut self, payload: Payload, fx: &mut Effects<BcastMsg, NoTimer>) {
        let n = fx.n();
        for i in 0..n {
            if i == self.pid.0 {
                continue;
            }
            let seq = self.send_seq[i];
            self.send_seq[i] += 1;
            fx.send(Pid(i), BcastMsg { seq, payload: payload.clone() });
        }
    }

    fn observe(&mut self, from: Pid, payload: Payload) -> bool {
        // Returns true if the payload was a Request (requires an ack).
        match payload {
            Payload::Request { lc, inv } => {
                self.lc = self.lc.max(lc);
                self.heard[from.0] = self.heard[from.0].max(lc);
                self.queue.insert((lc, from.0), inv);
                true
            }
            Payload::Ack { lc } => {
                self.lc = self.lc.max(lc);
                self.heard[from.0] = self.heard[from.0].max(lc);
                false
            }
        }
    }

    fn try_deliver(&mut self, fx: &mut Effects<BcastMsg, NoTimer>) {
        while let Some((&key, _)) = self.queue.first_key_value() {
            let (lc, origin) = key;
            // Deliverable once every process has been heard from with a
            // strictly larger Lamport time (no smaller-keyed request can
            // still arrive: FIFO layer + Lamport monotonicity).
            let ready = self.heard.iter().enumerate().all(|(j, &h)| j == origin || h > lc);
            if !ready {
                break;
            }
            let inv = self.queue.remove(&key).expect("head exists");
            let ret = self.object.apply(inv.op, &inv.arg);
            if self.pending == Some(key) {
                self.pending = None;
                fx.respond(ret);
            }
        }
    }
}

impl Node for BroadcastNode {
    type Msg = BcastMsg;
    type Timer = NoTimer;

    fn msg_wire_bytes(msg: &BcastMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<BcastMsg, NoTimer>) {
        // The broadcast baseline totally orders every class uniformly; it
        // cannot exploit the accessor/mutator distinction.
        debug_assert!(self.spec.op_meta(inv.op).is_some(), "unknown operation");
        let lc = self.tick();
        let key = (lc, self.pid.0);
        self.queue.insert(key, inv.clone());
        self.pending = Some(key);
        self.send_all(Payload::Request { lc, inv }, fx);
        self.try_deliver(fx);
    }

    fn on_deliver(&mut self, from: Pid, msg: BcastMsg, fx: &mut Effects<BcastMsg, NoTimer>) {
        // FIFO reordering per sender.
        self.buffered[from.0].insert(msg.seq, msg.payload);
        let mut needs_ack = false;
        while let Some(payload) = self.buffered[from.0].remove(&self.next_seq[from.0]) {
            self.next_seq[from.0] += 1;
            needs_ack |= self.observe(from, payload);
        }
        if needs_ack {
            let lc = self.tick();
            self.send_all(Payload::Ack { lc }, fx);
        }
        self.try_deliver(fx);
    }

    fn on_timer(&mut self, timer: NoTimer, _fx: &mut Effects<BcastMsg, NoTimer>) {
        match timer {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::{FifoQueue, Register};
    use lintime_adt::value::Value;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, SimConfig};
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::{ModelParams, Time};

    fn run_bcast(
        spec: Arc<dyn ObjectSpec>,
        delay: DelaySpec,
        schedule: Schedule,
    ) -> lintime_sim::run::Run {
        let p = ModelParams::default_experiment();
        let cfg = SimConfig::new(p, delay).with_schedule(schedule);
        simulate(&cfg, |pid| BroadcastNode::new(pid, p.n, Arc::clone(&spec)))
    }

    #[test]
    fn solo_op_takes_about_two_d() {
        let p = ModelParams::default_experiment();
        let spec = erase(Register::new(0));
        let run = run_bcast(
            spec,
            DelaySpec::AllMax,
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 1)),
        );
        assert!(run.complete());
        // Request out: d; acks back: d.
        assert_eq!(run.ops[0].latency(), Some(p.d * 2));
    }

    #[test]
    fn reads_are_not_faster_than_writes() {
        // The broadcast baseline cannot exploit operation classes.
        let spec = erase(Register::new(0));
        let run = run_bcast(
            spec,
            DelaySpec::AllMax,
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 1)).at(
                Pid(1),
                Time(20_000),
                Invocation::nullary("read"),
            ),
        );
        assert!(run.complete());
        assert_eq!(run.ops[0].latency(), run.ops[1].latency());
        assert_eq!(run.ops[1].ret, Some(Value::Int(1)));
    }

    #[test]
    fn concurrent_ops_agree_on_total_order() {
        let spec = erase(FifoQueue::new());
        let run = run_bcast(
            spec,
            DelaySpec::UniformRandom { seed: 17 },
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("enqueue", 10))
                .at(Pid(1), Time(0), Invocation::new("enqueue", 20))
                .at(Pid(2), Time(0), Invocation::new("enqueue", 30))
                .at(Pid(3), Time(60_000), Invocation::nullary("dequeue"))
                .at(Pid(0), Time(80_000), Invocation::nullary("dequeue"))
                .at(Pid(1), Time(100_000), Invocation::nullary("dequeue")),
        );
        assert!(run.complete(), "{run}");
        let mut dequeued: Vec<i64> =
            run.ops[3..].iter().filter_map(|o| o.ret.as_ref().and_then(|v| v.as_int())).collect();
        assert_eq!(dequeued.len(), 3);
        // All three enqueued values come out, each exactly once.
        dequeued.sort_unstable();
        assert_eq!(dequeued, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_layer_tolerates_reordering_delays() {
        // Random delays can reorder messages between a pair; the seq layer
        // must still deliver a consistent total order.
        let spec = erase(Register::new(0));
        let run = run_bcast(
            spec,
            DelaySpec::UniformRandom { seed: 99 },
            Schedule::new()
                .at(Pid(0), Time(0), Invocation::new("write", 1))
                .at(Pid(1), Time(100), Invocation::new("write", 2))
                .at(Pid(2), Time(200), Invocation::new("write", 3))
                .at(Pid(3), Time(50_000), Invocation::nullary("read"))
                .at(Pid(0), Time(70_000), Invocation::nullary("read")),
        );
        assert!(run.complete(), "{run}");
        // Both late reads agree on the final value.
        assert_eq!(run.ops[3].ret, run.ops[4].ret);
    }
}
