//! Recovery layer for Algorithm 1 under message-omission faults.
//!
//! The paper's model assumes every message arrives within `[d − u, d]`.
//! [`ReliableWtlwNode`] keeps Algorithm 1 linearizable when that assumption
//! is violated by a lossy network, by wrapping every [`WtlwNode`] broadcast
//! in a reliable-delivery protocol:
//!
//! * **Acks** — every `Data` message is acknowledged by the receiver
//!   (including duplicates, since the sender may have missed an earlier ack);
//! * **Retransmission** — unacked broadcasts are retransmitted with bounded
//!   exponential backoff: retry `k` fires `rto · 2^(k−1)` after retry `k − 1`,
//!   up to [`RecoveryConfig::max_retries`] retries;
//! * **Duplicate suppression** — retransmitted copies are deduplicated by
//!   timestamp (which is `(local time, pid)`, so globally unique).
//!
//! Retransmission stretches the worst-case delivery time of a mutator
//! announcement from `d` to `d + B`, where the *backoff budget*
//! `B = rto · (2^max_retries − 1)` is the latest possible retransmission
//! offset. The wrapped inner node therefore runs with two waits extended by
//! `B` — `execute = u + ε + B` and `aop_respond = (d − X) + B` — so that
//! omission faults degrade latency instead of linearizability. Timestamp
//! backdating and the pure-mutator ack delay are unchanged (neither depends
//! on message arrival).
//!
//! A **violation detector** rides along: whenever a mutator announcement
//! arrives with a timestamp older than the local execution frontier (a
//! mutator or locally-invoked accessor with a larger timestamp has already
//! executed), the detector records it. [`run_reliable`] folds these records
//! into [`Run::suspect`], so a run whose recovery budget was overwhelmed is
//! *flagged*, never silently certified.

use crate::timestamp::Timestamp;
use crate::wtlw::{Waits, WtlwMsg, WtlwNode, WtlwTimer};
use lintime_adt::spec::{Invocation, ObjectSpec};
use lintime_check::history::History;
use lintime_check::monitor::check_fast_with;
use lintime_check::wing_gong::{CheckConfig, Verdict};
use lintime_obs::{EventCategory, Obs};
use lintime_sim::engine::{simulate_full, SimConfig};
use lintime_sim::node::{Effects, Node};
use lintime_sim::run::Run;
use lintime_sim::time::{ModelParams, Pid, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Retransmission policy of the recovery layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Retransmission timeout: how long to wait for an ack before the first
    /// retry. Subsequent retries double it (bounded exponential backoff).
    pub rto: Time,
    /// Maximum number of retransmissions per broadcast. `0` disables
    /// retransmission entirely (detection-only mode: acks, duplicate
    /// suppression, and the violation detector stay active).
    pub max_retries: u32,
}

impl RecoveryConfig {
    /// The default policy: `rto = 2d` (an ack round trip takes at most `2d`,
    /// so an earlier retry could only produce duplicates) and two retries.
    pub fn standard(params: ModelParams) -> Self {
        RecoveryConfig { rto: params.d * 2, max_retries: 2 }
    }

    /// Detection-only mode: no retransmission, but duplicate suppression and
    /// the frontier violation detector stay active. The wrapped node runs
    /// with the paper's unmodified waits.
    pub fn detection_only(params: ModelParams) -> Self {
        RecoveryConfig { rto: params.d * 2, max_retries: 0 }
    }

    /// The backoff budget `B = rto · (2^max_retries − 1)`: the worst-case
    /// extra delay a successfully recovered message can accumulate (the last
    /// retry is sent `B` after the original transmission).
    pub fn backoff_budget(&self) -> Time {
        assert!(self.max_retries <= 20, "backoff budget would overflow");
        self.rto * ((1i64 << self.max_retries) - 1)
    }

    /// The paper's standard waits for tradeoff parameter `x`, with
    /// `execute` and `aop_respond` extended by the backoff budget so the
    /// inner algorithm tolerates recovered (late) messages.
    pub fn extended_waits(&self, params: ModelParams, x: Time) -> Waits {
        let b = self.backoff_budget();
        let mut w = Waits::standard(params, x);
        w.execute += b;
        w.aop_respond += b;
        w
    }
}

/// Messages of the recovery layer.
#[derive(Clone, Debug, PartialEq)]
pub enum RelMsg {
    /// A (possibly retransmitted) mutator announcement.
    Data(WtlwMsg),
    /// Acknowledgement of the `Data` message with this timestamp.
    Ack {
        /// Timestamp of the acknowledged announcement.
        ts: Timestamp,
    },
}

impl RelMsg {
    /// Estimated serialized size in bytes: tag plus the wrapped
    /// announcement, or tag plus a 12-byte timestamp for acks.
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            RelMsg::Data(m) => m.wire_bytes(),
            RelMsg::Ack { .. } => 12,
        }
    }
}

/// Timer tags of the recovery layer.
#[derive(Clone, Debug, PartialEq)]
pub enum RelTimer {
    /// A timer of the wrapped algorithm.
    Inner(WtlwTimer),
    /// Retry broadcast `ts`; `attempt` retransmissions have happened so far.
    Retransmit {
        /// Timestamp of the broadcast being retried.
        ts: Timestamp,
        /// Retransmissions already performed when this timer was set.
        attempt: u32,
    },
}

/// A broadcast awaiting acknowledgement from some peers.
struct PendingBroadcast {
    msg: WtlwMsg,
    unacked: BTreeSet<Pid>,
    attempt: u32,
}

/// Pre-registered metric handles for the recovery layer, built once per node
/// when observability is active (see [`ReliableWtlwNode::with_obs`]).
struct RelMetrics {
    acks_sent: lintime_obs::Counter,
    retransmissions: lintime_obs::Counter,
    duplicates_suppressed: lintime_obs::Counter,
    violations: lintime_obs::Counter,
}

impl RelMetrics {
    fn register(obs: &Obs) -> RelMetrics {
        let r = &obs.metrics;
        RelMetrics {
            acks_sent: r.counter("reliable.acks_sent"),
            retransmissions: r.counter("reliable.retransmissions"),
            duplicates_suppressed: r.counter("reliable.duplicates_suppressed"),
            violations: r.counter("reliable.violations"),
        }
    }
}

/// [`WtlwNode`] wrapped in the reliable-delivery recovery layer.
pub struct ReliableWtlwNode {
    pid: Pid,
    recovery: RecoveryConfig,
    inner: WtlwNode,
    outstanding: BTreeMap<Timestamp, PendingBroadcast>,
    /// Timestamps of announcements already delivered to the inner node.
    seen: BTreeSet<Timestamp>,
    retransmissions: u64,
    duplicates_suppressed: u64,
    violations: Vec<String>,
    obs: Obs,
    metrics: Option<RelMetrics>,
}

impl ReliableWtlwNode {
    /// A recovery-wrapped node for tradeoff parameter `x`. The inner node
    /// runs with [`RecoveryConfig::extended_waits`].
    pub fn new(
        pid: Pid,
        spec: Arc<dyn ObjectSpec>,
        params: ModelParams,
        x: Time,
        recovery: RecoveryConfig,
    ) -> Self {
        let inner = WtlwNode::with_waits(pid, spec, recovery.extended_waits(params, x));
        ReliableWtlwNode {
            pid,
            recovery,
            inner,
            outstanding: BTreeMap::new(),
            seen: BTreeSet::new(),
            retransmissions: 0,
            duplicates_suppressed: 0,
            violations: Vec::new(),
            obs: Obs::off(),
            metrics: None,
        }
    }

    /// Attach an observability bundle: retransmissions, suppressed
    /// duplicates, and detector findings become trace events
    /// ([`EventCategory::Retransmit`], [`EventCategory::Duplicate`],
    /// [`EventCategory::Suspect`]) and `reliable.*` counters.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.metrics = obs.is_active().then(|| RelMetrics::register(&obs));
        self.obs = obs;
        self
    }

    /// Number of `Data` retransmissions this node performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Number of duplicate announcements suppressed.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Frontier violations and exhausted-budget reports detected so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The wrapped Algorithm-1 node.
    pub fn inner(&self) -> &WtlwNode {
        &self.inner
    }

    /// The local execution frontier: the largest timestamp that has already
    /// taken effect at this process (executed mutator or locally-invoked
    /// accessor read). A mutator arriving below it is too late to be ordered
    /// correctly.
    fn frontier(&self) -> Option<Timestamp> {
        let m = self.inner.mutator_log.last().map(|e| e.ts);
        let a = self.inner.accessor_log.last().map(|e| e.ts);
        m.max(a)
    }

    /// Run an inner-node handler, track any broadcasts it produces for
    /// retransmission, and translate its effects into the wrapper's types.
    fn dispatch(
        &mut self,
        fx: &mut Effects<RelMsg, RelTimer>,
        f: impl FnOnce(&mut WtlwNode, &mut Effects<WtlwMsg, WtlwTimer>),
    ) {
        let mut inner_fx: Effects<WtlwMsg, WtlwTimer> =
            Effects::new(fx.pid(), fx.n(), fx.local_time());
        f(&mut self.inner, &mut inner_fx);
        let parts = inner_fx.into_parts();
        if self.recovery.max_retries > 0 {
            for (to, m) in &parts.sends {
                let pending = self.outstanding.entry(m.ts).or_insert_with(|| {
                    fx.set_timer(self.recovery.rto, RelTimer::Retransmit { ts: m.ts, attempt: 0 });
                    PendingBroadcast { msg: m.clone(), unacked: BTreeSet::new(), attempt: 0 }
                });
                pending.unacked.insert(*to);
            }
        }
        fx.absorb(parts, RelMsg::Data, RelTimer::Inner);
    }
}

impl Node for ReliableWtlwNode {
    type Msg = RelMsg;
    type Timer = RelTimer;

    fn msg_wire_bytes(msg: &RelMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<RelMsg, RelTimer>) {
        self.dispatch(fx, |inner, ifx| inner.on_invoke(inv, ifx));
    }

    fn on_deliver(&mut self, from: Pid, msg: RelMsg, fx: &mut Effects<RelMsg, RelTimer>) {
        match msg {
            RelMsg::Data(m) => {
                // Always ack, even a duplicate: the sender retransmitted
                // because it never saw our previous ack.
                fx.send(from, RelMsg::Ack { ts: m.ts });
                if let Some(mx) = &self.metrics {
                    mx.acks_sent.inc();
                }
                if !self.seen.insert(m.ts) {
                    self.duplicates_suppressed += 1;
                    self.obs.emit(
                        fx.local_time().0,
                        Some(self.pid.0),
                        EventCategory::Duplicate,
                        || format!("suppressed duplicate announcement {:?} from {from}", m.ts),
                    );
                    if let Some(mx) = &self.metrics {
                        mx.duplicates_suppressed.inc();
                    }
                    return;
                }
                if let Some(frontier) = self.frontier() {
                    if m.ts < frontier {
                        self.violations.push(format!(
                            "process {}: mutator {:?} arrived with timestamp {:?}, older than \
                             the execution frontier {:?} — linearization order may be broken",
                            self.pid, m.inv.op, m.ts, frontier
                        ));
                        self.obs.emit(
                            fx.local_time().0,
                            Some(self.pid.0),
                            EventCategory::Suspect,
                            || format!("mutator {:?} arrived behind frontier {frontier:?}", m.ts),
                        );
                        if let Some(mx) = &self.metrics {
                            mx.violations.inc();
                        }
                    }
                }
                self.dispatch(fx, |inner, ifx| inner.on_deliver(from, m, ifx));
            }
            RelMsg::Ack { ts } => {
                if let Some(e) = self.outstanding.get_mut(&ts) {
                    e.unacked.remove(&from);
                    if e.unacked.is_empty() {
                        let attempt = e.attempt;
                        self.outstanding.remove(&ts);
                        fx.cancel_timer(RelTimer::Retransmit { ts, attempt });
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer: RelTimer, fx: &mut Effects<RelMsg, RelTimer>) {
        match timer {
            RelTimer::Inner(t) => self.dispatch(fx, |inner, ifx| inner.on_timer(t, ifx)),
            RelTimer::Retransmit { ts, attempt } => {
                let Some(e) = self.outstanding.get_mut(&ts) else { return };
                if attempt != e.attempt {
                    return; // stale timer from a superseded attempt
                }
                if attempt >= self.recovery.max_retries {
                    // Budget exhausted with peers still unconfirmed: give up
                    // loudly. run_reliable folds this into Run::suspect.
                    let peers: Vec<usize> = e.unacked.iter().map(|p| p.0).collect();
                    self.violations.push(format!(
                        "process {}: retransmission budget exhausted for {:?}; delivery to \
                         processes {:?} unconfirmed",
                        self.pid, ts, peers
                    ));
                    self.obs.emit(
                        fx.local_time().0,
                        Some(self.pid.0),
                        EventCategory::Suspect,
                        || format!("retransmission budget exhausted for {ts:?}; peers {peers:?}"),
                    );
                    if let Some(mx) = &self.metrics {
                        mx.violations.inc();
                    }
                    self.outstanding.remove(&ts);
                    return;
                }
                for to in e.unacked.iter() {
                    fx.send(*to, RelMsg::Data(e.msg.clone()));
                }
                self.obs.emit(
                    fx.local_time().0,
                    Some(self.pid.0),
                    EventCategory::Retransmit,
                    || {
                        format!(
                            "retry {} of {:?} to {} unacked peers",
                            attempt + 1,
                            ts,
                            e.unacked.len()
                        )
                    },
                );
                if let Some(mx) = &self.metrics {
                    mx.retransmissions.add(e.unacked.len() as u64);
                }
                self.retransmissions += e.unacked.len() as u64;
                e.attempt = attempt + 1;
                // Next retry after rto · 2^attempt; the timer that fires at
                // attempt == max_retries is the final give-up check.
                fx.set_timer(
                    self.recovery.rto * (1i64 << e.attempt),
                    RelTimer::Retransmit { ts, attempt: e.attempt },
                );
            }
        }
    }
}

/// Simulate a cluster of [`ReliableWtlwNode`]s and fold every node's
/// detected violations into [`Run::suspect`], so downstream certification
/// ([`Run::certifiable`]) refuses runs whose recovery layer saw trouble.
pub fn run_reliable(
    spec: &Arc<dyn ObjectSpec>,
    cfg: &SimConfig,
    x: Time,
    recovery: RecoveryConfig,
) -> Run {
    let params = cfg.params;
    // Nodes inherit the config's observability bundle, so one `with_obs` on
    // the SimConfig lights up both the engine and the recovery layer.
    let (mut run, nodes) = simulate_full(cfg, |pid| {
        ReliableWtlwNode::new(pid, Arc::clone(spec), params, x, recovery).with_obs(cfg.obs.clone())
    });
    for node in &nodes {
        run.suspect.extend(node.violations().iter().cloned());
    }
    run
}

/// A recovered run's linearizability status, with the checker's budget
/// exhaustion reported as its own case rather than folded into failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunVerdict {
    /// The run's history is linearizable (witness replay-verified).
    Linearizable,
    /// The run's history is provably not linearizable.
    NotLinearizable,
    /// The checker's node budget ran out before a decision: the run is
    /// *unresolved*, not bad. Callers must not count it as a violation.
    Unknown,
    /// No checkable history could be extracted (e.g. pending operations).
    Incomplete(String),
}

/// The result of [`run_reliable_checked`]: the run plus its verdict.
#[derive(Debug)]
pub struct CheckedRun {
    /// The simulated run (including any `suspect` records from the recovery
    /// layer's violation detector).
    pub run: Run,
    /// Linearizability verdict on the run's extracted history.
    pub verdict: RunVerdict,
}

impl CheckedRun {
    /// True iff the run both looked clean to the recovery layer *and* its
    /// history was affirmatively certified linearizable.
    pub fn certified(&self) -> bool {
        self.run.certifiable() && self.verdict == RunVerdict::Linearizable
    }
}

/// [`run_reliable`] followed by a linearizability check of the extracted
/// history via the fast-path dispatcher
/// ([`lintime_check::monitor::check_fast`]), which routes to a
/// type-specialized monitor when one applies and falls back to the Wing–Gong
/// search otherwise. `Unknown` (budget exhaustion in the fallback) is
/// surfaced distinctly in [`RunVerdict`] — never conflated with
/// [`RunVerdict::NotLinearizable`].
pub fn run_reliable_checked(
    spec: &Arc<dyn ObjectSpec>,
    cfg: &SimConfig,
    x: Time,
    recovery: RecoveryConfig,
    check_cfg: CheckConfig,
) -> CheckedRun {
    let run = run_reliable(spec, cfg, x, recovery);
    let verdict = match History::from_run(&run) {
        Ok(history) => match check_fast_with(spec, &history, check_cfg) {
            Verdict::Linearizable(_) => RunVerdict::Linearizable,
            Verdict::NotLinearizable => RunVerdict::NotLinearizable,
            Verdict::Unknown => RunVerdict::Unknown,
        },
        Err(why) => RunVerdict::Incomplete(why),
    };
    CheckedRun { run, verdict }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::Register;
    use lintime_adt::value::Value;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::faults::FaultPlan;
    use lintime_sim::schedule::Schedule;

    fn params() -> ModelParams {
        ModelParams::default_experiment()
    }

    #[test]
    fn backoff_budget_matches_geometric_sum() {
        let p = params();
        let rc = RecoveryConfig { rto: p.d * 2, max_retries: 3 };
        // rto + 2·rto + 4·rto = 7·rto
        assert_eq!(rc.backoff_budget(), p.d * 14);
        assert_eq!(RecoveryConfig::detection_only(p).backoff_budget(), Time::ZERO);
    }

    #[test]
    fn extended_waits_stretch_execute_and_aop_only() {
        let p = params();
        let rc = RecoveryConfig { rto: p.d * 2, max_retries: 1 };
        let x = Time(1200);
        let w = rc.extended_waits(p, x);
        let base = Waits::standard(p, x);
        assert_eq!(w.execute, base.execute + p.d * 2);
        assert_eq!(w.aop_respond, base.aop_respond + p.d * 2);
        assert_eq!(w.aop_backdate, base.aop_backdate);
        assert_eq!(w.mop_respond, base.mop_respond);
        assert_eq!(w.add, base.add);
    }

    #[test]
    fn faultless_run_is_clean_and_complete() {
        let p = params();
        let rc = RecoveryConfig::standard(p);
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 42)).at(
                Pid(1),
                Time(100_000),
                Invocation::nullary("read"),
            ),
        );
        let (run, nodes) = simulate_full(&cfg, |pid| {
            ReliableWtlwNode::new(pid, Arc::clone(&spec), p, Time::ZERO, rc)
        });
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        assert!(run.certifiable());
        // Write still acks in X + ε; the read waits the extended d − X + B.
        assert_eq!(run.ops[0].latency(), Some(p.epsilon));
        assert_eq!(run.ops[1].latency(), Some(p.d + rc.backoff_budget()));
        assert_eq!(run.ops[1].ret, Some(Value::Int(42)));
        for node in &nodes {
            assert_eq!(node.retransmissions(), 0);
            assert!(node.violations().is_empty());
        }
    }

    #[test]
    fn dropped_broadcast_is_retransmitted_and_recovered() {
        let p = params();
        let rc = RecoveryConfig { rto: p.d * 2, max_retries: 1 };
        let spec = erase(Register::new(0));
        // Drop the very first message on link 0→1: the write announcement.
        // The retransmission must get it through, and p1's read must see it.
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(FaultPlan::new(7).drop_exact(Pid(0), Pid(1), 0))
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 9)).at(
                Pid(1),
                Time(200_000),
                Invocation::nullary("read"),
            ));
        let (run, nodes) = simulate_full(&cfg, |pid| {
            ReliableWtlwNode::new(pid, Arc::clone(&spec), p, Time::ZERO, rc)
        });
        assert!(run.complete(), "{run}");
        assert_eq!(run.faults.len(), 1);
        assert_eq!(run.ops[1].ret, Some(Value::Int(9)), "{run}");
        assert!(nodes[0].retransmissions() >= 1);
        assert!(nodes.iter().all(|n| n.violations().is_empty()));
    }

    #[test]
    fn duplicates_are_suppressed() {
        let p = params();
        let rc = RecoveryConfig::standard(p);
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(FaultPlan::new(3).duplicate_all(1.0))
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 5)).at(
                Pid(1),
                Time(200_000),
                Invocation::nullary("read"),
            ));
        let (run, nodes) = simulate_full(&cfg, |pid| {
            ReliableWtlwNode::new(pid, Arc::clone(&spec), p, Time::ZERO, rc)
        });
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[1].ret, Some(Value::Int(5)));
        let suppressed: u64 = nodes.iter().map(|n| n.duplicates_suppressed()).sum();
        assert!(suppressed > 0, "duplicated network must exercise suppression");
    }

    #[test]
    fn detector_flags_mutator_behind_the_frontier() {
        let p = params();
        let rc = RecoveryConfig::detection_only(p);
        let spec = erase(Register::new(0));
        // p0's write announcement to p1 is delayed far beyond d (a model
        // violation no retransmission will fix, since nothing was dropped).
        // p1 executes its own later write first, so the stale arrival lands
        // behind p1's frontier and must be flagged.
        let late = Time(100) + p.d + p.epsilon + Time(1000);
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(FaultPlan::new(1).override_delay(Pid(0), Pid(1), 0, late))
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 1)).at(
                Pid(1),
                Time(100),
                Invocation::new("write", 2),
            ));
        let run = run_reliable(&spec, &cfg, Time::ZERO, rc);
        assert!(run.complete(), "{run}");
        assert!(run.is_suspect(), "stale arrival must mark the run suspect");
        assert!(!run.certifiable());
        assert!(run.suspect.iter().any(|v| v.contains("execution frontier")), "{:?}", run.suspect);
    }

    #[test]
    fn observed_recovery_traces_retransmissions() {
        let p = params();
        let rc = RecoveryConfig { rto: p.d * 2, max_retries: 1 };
        let spec = erase(Register::new(0));
        let (obs, ring) = Obs::ring(8192);
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(FaultPlan::new(7).drop_exact(Pid(0), Pid(1), 0))
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 9)).at(
                Pid(1),
                Time(200_000),
                Invocation::nullary("read"),
            ))
            .with_obs(obs.clone());
        let run = run_reliable(&spec, &cfg, Time::ZERO, rc);
        assert!(run.complete(), "{run}");
        let events = ring.events();
        assert!(
            events.iter().any(|e| e.category == EventCategory::Retransmit),
            "dropped announcement must surface as a retransmit event"
        );
        assert!(obs.metrics.counter("reliable.retransmissions").get() >= 1);
        assert!(obs.metrics.counter("reliable.acks_sent").get() >= 1);
        assert_eq!(obs.metrics.counter("reliable.violations").get(), 0);
    }

    #[test]
    fn checked_run_certifies_clean_recovered_run() {
        let p = params();
        let rc = RecoveryConfig { rto: p.d * 2, max_retries: 1 };
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(FaultPlan::new(7).drop_exact(Pid(0), Pid(1), 0))
            .with_schedule(Schedule::new().at(Pid(0), Time(0), Invocation::new("write", 9)).at(
                Pid(1),
                Time(200_000),
                Invocation::nullary("read"),
            ));
        let checked = run_reliable_checked(&spec, &cfg, Time::ZERO, rc, CheckConfig::default());
        assert_eq!(checked.verdict, RunVerdict::Linearizable);
        assert!(checked.certified(), "{}", checked.run);
    }

    #[test]
    fn checked_run_reports_budget_exhaustion_as_unknown() {
        let p = params();
        let rc = RecoveryConfig::standard(p);
        let spec = erase(Register::new(0));
        let mut schedule = Schedule::new();
        // Many concurrent same-value writes: ambiguous for the register
        // monitor (defers) and wide for the fallback search, so a tiny node
        // budget runs out.
        for pid in 0..3 {
            schedule = schedule.at(Pid(pid), Time(0), Invocation::new("write", 7));
        }
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(schedule);
        let checked = run_reliable_checked(
            &spec,
            &cfg,
            Time::ZERO,
            rc,
            CheckConfig { max_nodes: 1, ..CheckConfig::default() },
        );
        assert_eq!(checked.verdict, RunVerdict::Unknown, "{}", checked.run);
        assert!(!checked.certified());
    }
}
