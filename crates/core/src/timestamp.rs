//! Invocation timestamps: `(local clock time, process id)` ordered
//! lexicographically (Section 5.1 of the paper).

use lintime_sim::time::{Pid, Time};
use std::fmt;

/// A timestamp assigned to an operation instance on invocation.
///
/// The priority function of the `To_Execute` queue is "lexicographic ordering
/// of the timestamps of the instances, with the lowest first" — exactly the
/// derived `Ord` on `(time, pid)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// Local clock time of the invocation (minus `X` for pure accessors).
    pub time: Time,
    /// Invoking process id (tie-breaker).
    pub pid: Pid,
}

impl Timestamp {
    /// Build a timestamp.
    pub fn new(time: Time, pid: Pid) -> Self {
        Timestamp { time, pid }
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.time, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_ordering() {
        let a = Timestamp::new(Time(10), Pid(3));
        let b = Timestamp::new(Time(10), Pid(4));
        let c = Timestamp::new(Time(11), Pid(0));
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn equal_timestamps() {
        let a = Timestamp::new(Time(5), Pid(1));
        let b = Timestamp::new(Time(5), Pid(1));
        assert_eq!(a, b);
    }
}
