//! Deliberately *incorrect* fast algorithms: victims for the lower-bound
//! adversaries of Theorems 2–5.
//!
//! The lower-bound theorems say: *any* algorithm whose operation `OP`
//! responds faster than the bound admits an admissible run that is not
//! linearizable. To exhibit that executably we need algorithms that actually
//! respond too fast. [`NaiveLocalNode`] is the simplest: it executes against
//! the local replica and responds after a configurable wait, gossiping
//! mutations optimistically. Sweeping the wait below/above the bound (and
//! feeding the runs to the adversarial schedules from the proofs) shows the
//! violation/no-violation crossover exactly where the theorems place it.
//!
//! A second family of victims is built directly from Algorithm 1 with
//! shortened timers — see [`crate::wtlw::Waits::scaled`] and
//! [`crate::wtlw::WtlwNode::with_waits`].

use lintime_adt::spec::{Invocation, ObjState, ObjectSpec};
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::{Pid, Time};
use std::sync::Arc;

/// Message: an optimistic replication of a mutator.
#[derive(Clone, Debug, PartialEq)]
pub struct NaiveMsg {
    /// The mutating invocation to replay.
    pub inv: Invocation,
}

impl NaiveMsg {
    /// Estimated serialized size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.inv.wire_bytes()
    }
}

/// Timer: respond to the pending operation with a precomputed value.
#[derive(Clone, Debug, PartialEq)]
pub struct NaiveTimer {
    ret: lintime_adt::value::Value,
}

/// An optimistically-replicated node: applies operations locally on
/// invocation, gossips mutators, and responds after `wait`.
///
/// * `wait = 0` → responds instantly: violates every lower bound.
/// * larger `wait`s delay the response without changing the (already chosen)
///   return value, so return-value anomalies persist until the node would
///   genuinely coordinate — exactly the behaviour the adversaries exploit.
pub struct NaiveLocalNode {
    spec: Arc<dyn ObjectSpec>,
    object: Box<dyn ObjState>,
    wait: Time,
}

impl NaiveLocalNode {
    /// Create a node responding `wait` after each invocation.
    pub fn new(spec: Arc<dyn ObjectSpec>, wait: Time) -> Self {
        let object = spec.new_object();
        NaiveLocalNode { spec, object, wait }
    }
}

impl Node for NaiveLocalNode {
    type Msg = NaiveMsg;
    type Timer = NaiveTimer;

    fn msg_wire_bytes(msg: &NaiveMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<NaiveMsg, NaiveTimer>) {
        let class = self.spec.op_meta(inv.op).expect("unknown operation").class;
        let ret = self.object.apply(inv.op, &inv.arg);
        if class.is_mutator() {
            fx.broadcast(NaiveMsg { inv });
        }
        if self.wait == Time::ZERO {
            fx.respond(ret);
        } else {
            fx.set_timer(self.wait, NaiveTimer { ret });
        }
    }

    fn on_deliver(&mut self, _from: Pid, msg: NaiveMsg, _fx: &mut Effects<NaiveMsg, NaiveTimer>) {
        // Replay the remote mutation in arrival order (no coordination —
        // replicas can permanently diverge; that is the point).
        let _ = self.object.apply(msg.inv.op, &msg.inv.arg);
    }

    fn on_timer(&mut self, timer: NaiveTimer, fx: &mut Effects<NaiveMsg, NaiveTimer>) {
        fx.respond(timer.ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::RmwRegister;
    use lintime_adt::value::Value;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, SimConfig};
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::ModelParams;

    #[test]
    fn concurrent_rmws_both_see_zero() {
        // The canonical non-linearizable outcome: two concurrent fetch-adds
        // both return the initial value.
        let p = ModelParams::default_experiment();
        let spec = erase(RmwRegister::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("rmw", 1)).at(
                Pid(1),
                Time(0),
                Invocation::new("rmw", 1),
            ),
        );
        let run = simulate(&cfg, |_| NaiveLocalNode::new(Arc::clone(&spec), Time::ZERO));
        assert!(run.complete());
        assert_eq!(run.ops[0].ret, Some(Value::Int(0)));
        assert_eq!(run.ops[1].ret, Some(Value::Int(0)));
    }

    #[test]
    fn waiting_does_not_fix_the_precomputed_return() {
        // Even with a wait, the return value was chosen at invocation time.
        let p = ModelParams::default_experiment();
        let spec = erase(RmwRegister::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), Invocation::new("rmw", 1)).at(
                Pid(1),
                Time(0),
                Invocation::new("rmw", 1),
            ),
        );
        let run = simulate(&cfg, |_| NaiveLocalNode::new(Arc::clone(&spec), p.d));
        assert!(run.complete());
        assert_eq!(run.ops[0].ret, run.ops[1].ret);
        assert_eq!(run.ops[0].latency(), Some(p.d));
    }
}
