//! Crash-tolerant kv-store as a **per-key composition** of majority-quorum
//! registers: one Mostéfaoui–Raynal register ([`crate::mr_register`]) per
//! key, all multiplexed over one message type and one replica map.
//!
//! The construction leans on the *locality* (compositionality) of
//! linearizability — Herlihy & Wing's classic observation that a history is
//! linearizable iff its per-object projections are. A kv-store whose
//! operations each touch a single key *is* a product of independent
//! registers, one per key: `put(k, v)` writes `Some(v)` to register `k`,
//! `del(k)` writes `None` (absent), `get(k)` reads register `k`. Since
//! every sub-history linearizes by the register protocol's guarantee, the
//! composed kv-store history linearizes too — at **register cost per key**:
//!
//! * `put`/`del`: two quorum phases, worst-case `4d`, `4(n−1)` messages;
//! * `get`: one round trip (`2d`) when the quorum's timestamps for that key
//!   agree (always in quiescent periods), classic ABD write-back otherwise.
//!
//! Contrast with [`crate::quorum_sm`], which implements *any* type by
//! replicating a whole operation log: the composition is asymptotically
//! cheaper (messages carry one key's 13-byte versioned value, never a log
//! prefix, and no stability wait is needed) but only exists because the
//! kv-store's operations are single-key. Fault envelope is the register's:
//! any `⌊(n−1)/2⌋` crashes, duplication, and unbounded stalls — no clocks
//! are consulted anywhere.

use crate::mr_register::{MrTs, NoTimer};
use lintime_adt::spec::{Invocation, ObjectSpec, SpecKind};
use lintime_adt::types::kv_store::ops;
use lintime_adt::value::Value;
use lintime_obs::{EventCategory, Obs};
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::Pid;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Messages of the per-key quorum kv-store. `rid` is the client's
/// per-operation request id; replies carrying a stale `rid` are discarded.
/// Every query/store names the key it addresses; replies don't need to (the
/// client has at most one operation, hence one key, in flight).
#[derive(Clone, Debug, PartialEq)]
pub enum AbdMsg {
    /// Write phase 1: highest sequence number you store for `key`?
    SeqQuery {
        /// Requesting operation id.
        rid: u64,
        /// Key being written.
        key: i64,
    },
    /// Reply to [`AbdMsg::SeqQuery`].
    SeqReply {
        /// Echoed operation id.
        rid: u64,
        /// The replica's current sequence number for the queried key.
        seq: u64,
    },
    /// Read phase 1: what `(ts, value)` do you hold for `key`?
    ValQuery {
        /// Requesting operation id.
        rid: u64,
        /// Key being read.
        key: i64,
    },
    /// Reply to [`AbdMsg::ValQuery`].
    ValReply {
        /// Echoed operation id.
        rid: u64,
        /// The replica's current timestamp for the queried key.
        ts: MrTs,
        /// The replica's current value (`None` = key absent).
        val: Option<i64>,
    },
    /// Store `(ts, val)` under `key` (write phase 2, or a read's
    /// write-back). The replica adopts it iff `ts` exceeds what it holds
    /// for that key, and always acks.
    Store {
        /// Requesting operation id.
        rid: u64,
        /// Key being stored.
        key: i64,
        /// Timestamp to store.
        ts: MrTs,
        /// Value to store (`None` deletes the key).
        val: Option<i64>,
    },
    /// Acknowledgement of an [`AbdMsg::Store`].
    StoreAck {
        /// Echoed operation id.
        rid: u64,
    },
}

impl AbdMsg {
    /// Estimated serialized size in bytes: tag + 8-byte `rid`, plus the
    /// variant payload (key 8, timestamp 12 = 8-byte seq + 4-byte pid,
    /// optioned value 1 + 8). Constant-size regardless of store size — the
    /// payoff of per-key composition over log shipping.
    pub fn wire_bytes(&self) -> usize {
        9 + match self {
            AbdMsg::StoreAck { .. } => 0,
            AbdMsg::SeqQuery { .. } | AbdMsg::ValQuery { .. } | AbdMsg::SeqReply { .. } => 8,
            AbdMsg::ValReply { val, .. } => 12 + 1 + if val.is_some() { 8 } else { 0 },
            AbdMsg::Store { val, .. } => 8 + 12 + 1 + if val.is_some() { 8 } else { 0 },
        }
    }
}

/// Client-side progress of the operation pending at this process — the MR
/// register phases, carrying the key the operation addresses. Each phase
/// records the set of processes heard from (including this one); sets, not
/// counters, so duplicated replies cannot inflate a quorum.
enum Phase {
    Idle,
    /// put/del phase 1: collecting sequence numbers for the key.
    WriteQuery {
        key: i64,
        val: Option<i64>,
        max_seq: u64,
        heard: BTreeSet<Pid>,
    },
    /// put/del phase 2: collecting store acks.
    WriteCommit {
        heard: BTreeSet<Pid>,
    },
    /// get phase 1: collecting `(ts, value)` replies for the key. `uniform`
    /// stays true while every reply carries the same timestamp.
    ReadQuery {
        key: i64,
        best_ts: MrTs,
        best_val: Option<i64>,
        uniform: bool,
        heard: BTreeSet<Pid>,
    },
    /// get slow path: writing the maximum back before responding.
    ReadWriteback {
        val: Option<i64>,
        heard: BTreeSet<Pid>,
    },
}

/// Pre-registered `abd.*` metric handles (see [`AbdKvNode::with_obs`]).
struct AbdMetrics {
    round_trips: lintime_obs::Counter,
    fast_reads: lintime_obs::Counter,
    read_writebacks: lintime_obs::Counter,
}

impl AbdMetrics {
    fn register(obs: &Obs) -> AbdMetrics {
        let r = &obs.metrics;
        AbdMetrics {
            round_trips: r.counter("abd.quorum_round_trips"),
            fast_reads: r.counter("abd.fast_reads"),
            read_writebacks: r.counter("abd.read_writebacks"),
        }
    }
}

/// One process of the per-key quorum kv-store: the replica's versioned map
/// plus the client state machine for its own pending operation.
pub struct AbdKvNode {
    pid: Pid,
    n: usize,
    /// Replica state: per-key `(ts, value)`; absent keys are implicitly at
    /// `(MrTs::INITIAL, None)`.
    store: BTreeMap<i64, (MrTs, Option<i64>)>,
    /// Client state.
    rid: u64,
    phase: Phase,
    /// Completed quorum round trips (each phase of each operation is one).
    round_trips: u64,
    /// Gets that responded after a single round trip.
    fast_reads: u64,
    /// Gets that needed the write-back slow path.
    read_writebacks: u64,
    obs: Obs,
    metrics: Option<AbdMetrics>,
}

impl AbdKvNode {
    /// Build a node. The spec must be the kv-store ([`SpecKind::KvStore`]):
    /// the composition is per-key and relies on every operation addressing
    /// exactly one key.
    pub fn new(pid: Pid, spec: Arc<dyn ObjectSpec>, n: usize) -> Self {
        assert_eq!(
            spec.kind(),
            SpecKind::KvStore,
            "the ABD composition implements a kv-store, not {}",
            spec.name()
        );
        AbdKvNode {
            pid,
            n,
            store: BTreeMap::new(),
            rid: 0,
            phase: Phase::Idle,
            round_trips: 0,
            fast_reads: 0,
            read_writebacks: 0,
            obs: Obs::off(),
            metrics: None,
        }
    }

    /// Attach an observability bundle: quorum round trips, fast reads, and
    /// write-backs become `abd.*` counters and trace events.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.metrics = obs.is_active().then(|| AbdMetrics::register(&obs));
        self.obs = obs;
        self
    }

    /// Majority quorum size `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Completed quorum round trips at this node.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// Gets that completed on the one-round-trip fast path.
    pub fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    /// Gets that needed the write-back slow path.
    pub fn read_writebacks(&self) -> u64 {
        self.read_writebacks
    }

    /// The replica's `(ts, value)` for a key (absent = initial).
    fn entry(&self, key: i64) -> (MrTs, Option<i64>) {
        self.store.get(&key).copied().unwrap_or((MrTs::INITIAL, None))
    }

    /// Replica adoption: keep the lexicographically larger timestamp per key.
    fn adopt(&mut self, key: i64, ts: MrTs, val: Option<i64>) {
        if ts > self.entry(key).0 {
            self.store.insert(key, (ts, val));
        }
    }

    fn count_round_trip(&mut self) {
        self.round_trips += 1;
        if let Some(m) = &self.metrics {
            m.round_trips.inc();
        }
    }

    /// A fresh phase quorum with the local replica already counted.
    fn heard_self(&self) -> BTreeSet<Pid> {
        let mut heard = BTreeSet::new();
        heard.insert(self.pid);
        heard
    }

    /// The kv-store response for a read value: absent keys answer `Unit`.
    fn get_ret(val: Option<i64>) -> Value {
        val.map_or(Value::Unit, Value::Int)
    }

    /// Drive the client state machine: whenever the current phase has heard
    /// a majority, finish it and start the next (or respond). A loop rather
    /// than recursion — with `n = 1` every quorum is immediately satisfied
    /// and a put falls straight through both phases.
    fn advance(&mut self, fx: &mut Effects<AbdMsg, NoTimer>) {
        loop {
            let q = self.quorum();
            let ready = match &self.phase {
                Phase::WriteQuery { heard, .. }
                | Phase::WriteCommit { heard }
                | Phase::ReadQuery { heard, .. }
                | Phase::ReadWriteback { heard, .. } => heard.len() >= q,
                Phase::Idle => false,
            };
            if !ready {
                return;
            }
            match std::mem::replace(&mut self.phase, Phase::Idle) {
                Phase::Idle => unreachable!("ready implies a live phase"),
                Phase::WriteQuery { key, val, max_seq, .. } => {
                    self.count_round_trip();
                    let ts = MrTs { seq: max_seq + 1, pid: self.pid };
                    self.adopt(key, ts, val);
                    self.phase = Phase::WriteCommit { heard: self.heard_self() };
                    fx.broadcast(AbdMsg::Store { rid: self.rid, key, ts, val });
                }
                Phase::WriteCommit { .. } => {
                    self.count_round_trip();
                    fx.respond(Value::Unit); // put and del ack with Unit
                    return;
                }
                Phase::ReadQuery { key, best_ts, best_val, uniform, .. } => {
                    self.count_round_trip();
                    if uniform {
                        // Every quorum member holds the same timestamp for
                        // this key: the version is already at a majority.
                        self.fast_reads += 1;
                        if let Some(m) = &self.metrics {
                            m.fast_reads.inc();
                        }
                        fx.respond(Self::get_ret(best_val));
                        return;
                    }
                    // Mixed timestamps: write the maximum back to a majority
                    // before responding, so no later get can see older state.
                    self.read_writebacks += 1;
                    if let Some(m) = &self.metrics {
                        m.read_writebacks.inc();
                    }
                    self.obs.emit(fx.local_time().0, Some(self.pid.0), EventCategory::Send, || {
                        format!("get({key}) write-back of {best_ts:?} before responding")
                    });
                    self.adopt(key, best_ts, best_val);
                    self.phase = Phase::ReadWriteback { val: best_val, heard: self.heard_self() };
                    fx.broadcast(AbdMsg::Store { rid: self.rid, key, ts: best_ts, val: best_val });
                }
                Phase::ReadWriteback { val, .. } => {
                    self.count_round_trip();
                    fx.respond(Self::get_ret(val));
                    return;
                }
            }
        }
    }
}

impl Node for AbdKvNode {
    type Msg = AbdMsg;
    type Timer = NoTimer;

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<AbdMsg, NoTimer>) {
        assert!(
            matches!(self.phase, Phase::Idle),
            "one operation at a time per process (engine enforces this)"
        );
        self.rid += 1;
        match inv.op {
            ops::PUT => {
                let (key, v) = inv
                    .arg
                    .as_pair()
                    .and_then(|(a, b)| Some((a.as_int()?, b.as_int()?)))
                    .expect("put requires a (key, value) pair of integers");
                self.phase = Phase::WriteQuery {
                    key,
                    val: Some(v),
                    max_seq: self.entry(key).0.seq,
                    heard: self.heard_self(),
                };
                fx.broadcast(AbdMsg::SeqQuery { rid: self.rid, key });
            }
            ops::DEL => {
                let key = inv.arg.as_int().expect("del requires an integer key");
                self.phase = Phase::WriteQuery {
                    key,
                    val: None,
                    max_seq: self.entry(key).0.seq,
                    heard: self.heard_self(),
                };
                fx.broadcast(AbdMsg::SeqQuery { rid: self.rid, key });
            }
            ops::GET => {
                let key = inv.arg.as_int().expect("get requires an integer key");
                let (best_ts, best_val) = self.entry(key);
                self.phase = Phase::ReadQuery {
                    key,
                    best_ts,
                    best_val,
                    uniform: true,
                    heard: self.heard_self(),
                };
                fx.broadcast(AbdMsg::ValQuery { rid: self.rid, key });
            }
            other => panic!("abd_kv: unsupported operation {other:?}"),
        }
        // n = 1 (or tiny clusters): the local replica may already be a
        // majority on its own.
        self.advance(fx);
    }

    fn on_deliver(&mut self, from: Pid, msg: AbdMsg, fx: &mut Effects<AbdMsg, NoTimer>) {
        match msg {
            // Replica duties: answer queries, adopt stores, always ack.
            AbdMsg::SeqQuery { rid, key } => {
                let seq = self.entry(key).0.seq;
                fx.send(from, AbdMsg::SeqReply { rid, seq });
            }
            AbdMsg::ValQuery { rid, key } => {
                let (ts, val) = self.entry(key);
                fx.send(from, AbdMsg::ValReply { rid, ts, val });
            }
            AbdMsg::Store { rid, key, ts, val } => {
                self.adopt(key, ts, val);
                fx.send(from, AbdMsg::StoreAck { rid });
            }
            // Client-side replies: discarded unless they carry the current
            // operation id *and* fit the current phase.
            AbdMsg::SeqReply { rid, seq } if rid == self.rid => {
                if let Phase::WriteQuery { max_seq, heard, .. } = &mut self.phase {
                    if heard.insert(from) {
                        *max_seq = (*max_seq).max(seq);
                        self.advance(fx);
                    }
                }
            }
            AbdMsg::ValReply { rid, ts, val } if rid == self.rid => {
                if let Phase::ReadQuery { best_ts, best_val, uniform, heard, .. } = &mut self.phase
                {
                    if heard.insert(from) {
                        if ts != *best_ts {
                            *uniform = false;
                        }
                        if ts > *best_ts {
                            *best_ts = ts;
                            *best_val = val;
                        }
                        self.advance(fx);
                    }
                }
            }
            AbdMsg::StoreAck { rid } if rid == self.rid => {
                if let Phase::WriteCommit { heard } | Phase::ReadWriteback { heard, .. } =
                    &mut self.phase
                {
                    if heard.insert(from) {
                        self.advance(fx);
                    }
                }
            }
            // Stale replies from an already-completed operation.
            AbdMsg::SeqReply { .. } | AbdMsg::ValReply { .. } | AbdMsg::StoreAck { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: NoTimer, _fx: &mut Effects<AbdMsg, NoTimer>) {
        match timer {}
    }

    fn msg_wire_bytes(msg: &AbdMsg) -> usize {
        msg.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::KvStore;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, simulate_full, SimConfig};
    use lintime_sim::faults::FaultPlan;
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::{ModelParams, Time};

    fn params5() -> ModelParams {
        ModelParams::new(5, Time(6000), Time(2400), Time(1800))
    }

    fn mk(spec: &Arc<dyn ObjectSpec>, n: usize) -> impl FnMut(Pid) -> AbdKvNode + '_ {
        move |pid| AbdKvNode::new(pid, Arc::clone(spec), n)
    }

    fn put(k: i64, v: i64) -> Invocation {
        Invocation::new("put", Value::pair(k, v))
    }

    #[test]
    fn put_get_latencies_match_the_register() {
        let p = params5();
        let spec = erase(KvStore::new());
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(0), Time(0), put(1, 42)).at(
                Pid(1),
                Time(100_000),
                Invocation::new("get", 1),
            ),
        );
        let (run, nodes) = simulate_full(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        assert!(run.errors.is_empty(), "{:?}", run.errors);
        // Put: two quorum round trips of d each way = 4d — register cost.
        assert_eq!(run.ops[0].latency(), Some(p.d * 4));
        // Quiescent get: all replicas agree, one round trip = 2d.
        assert_eq!(run.ops[1].latency(), Some(p.d * 2));
        assert_eq!(run.ops[1].ret, Some(Value::Int(42)));
        assert_eq!(nodes[1].fast_reads(), 1);
        assert_eq!(nodes[1].read_writebacks(), 0);
        assert_eq!(nodes[0].round_trips(), 2);
    }

    #[test]
    fn del_makes_the_key_absent() {
        let p = params5();
        let spec = erase(KvStore::new());
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), put(3, 30))
                .at(Pid(1), Time(100_000), Invocation::new("del", 3))
                .at(Pid(2), Time(200_000), Invocation::new("get", 3))
                .at(Pid(2), Time(300_000), Invocation::new("get", 99)),
        );
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[2].ret, Some(Value::Unit), "deleted key must read absent");
        assert_eq!(run.ops[3].ret, Some(Value::Unit), "never-written key reads absent");
    }

    #[test]
    fn distinct_keys_are_independent_registers() {
        let p = params5();
        let spec = erase(KvStore::new());
        // Concurrent puts on distinct keys, then gets of both: each key's
        // register holds its own value, untouched by the other's traffic.
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 13 }).with_schedule(
            Schedule::new()
                .at(Pid(0), Time(0), put(1, 10))
                .at(Pid(1), Time(5), put(2, 20))
                .at(Pid(2), Time(100_000), Invocation::new("get", 1))
                .at(Pid(3), Time(100_000), Invocation::new("get", 2)),
        );
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[2].ret, Some(Value::Int(10)));
        assert_eq!(run.ops[3].ret, Some(Value::Int(20)));
    }

    #[test]
    fn survives_minority_crashes() {
        let p = params5();
        let spec = erase(KvStore::new());
        let plan = FaultPlan::new(11).crash(Pid(3), Time(1)).crash(Pid(4), Time(1));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_faults(plan).with_schedule(
            Schedule::new().at(Pid(0), Time(0), put(1, 5)).at(Pid(1), Time(50_000), put(1, 6)).at(
                Pid(2),
                Time(100_000),
                Invocation::new("get", 1),
            ),
        );
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "a majority is alive, every op must finish: {run}");
        assert!(!run.truncated);
        assert_eq!(run.ops[2].ret, Some(Value::Int(6)));
        assert_eq!(run.crashed_pending, 0);
    }

    #[test]
    fn majority_crash_blocks_instead_of_lying() {
        let p = params5();
        let spec = erase(KvStore::new());
        let plan =
            FaultPlan::new(11).crash(Pid(2), Time(1)).crash(Pid(3), Time(1)).crash(Pid(4), Time(1));
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_faults(plan)
            .with_schedule(Schedule::new().at(Pid(0), Time(0), put(1, 5)));
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(!run.complete());
        assert_eq!(run.pending().count(), 1);
    }

    #[test]
    fn duplicated_replies_cannot_fake_a_quorum() {
        let p = params5();
        let spec = erase(KvStore::new());
        let plan =
            FaultPlan::new(5).crash(Pid(3), Time(1)).crash(Pid(4), Time(1)).duplicate_all(1.0);
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_faults(plan).with_schedule(
            Schedule::new().at(Pid(0), Time(0), put(7, 9)).at(
                Pid(1),
                Time(100_000),
                Invocation::new("get", 7),
            ),
        );
        let run = simulate(&cfg, mk(&spec, p.n));
        assert!(run.complete(), "{run}");
        assert_eq!(run.ops[1].ret, Some(Value::Int(9)));
    }

    #[test]
    fn single_process_cluster_is_its_own_quorum() {
        // The engine requires n ≥ 2, so drive the node handlers directly:
        // with n = 1 the local replica alone is a majority and both phases
        // complete inside `on_invoke`, with no messages sent.
        let spec = erase(KvStore::new());
        let mut node = AbdKvNode::new(Pid(0), Arc::clone(&spec), 1);

        let mut fx = Effects::new(Pid(0), 1, Time(0));
        node.on_invoke(put(1, 3), &mut fx);
        let parts = fx.into_parts();
        assert!(parts.sends.is_empty());
        assert_eq!(parts.response, Some(Value::Unit));

        let mut fx = Effects::new(Pid(0), 1, Time(10));
        node.on_invoke(Invocation::new("get", 1), &mut fx);
        let parts = fx.into_parts();
        assert!(parts.sends.is_empty());
        assert_eq!(parts.response, Some(Value::Int(3)));

        let mut fx = Effects::new(Pid(0), 1, Time(20));
        node.on_invoke(Invocation::new("del", 1), &mut fx);
        assert_eq!(fx.into_parts().response, Some(Value::Unit));

        let mut fx = Effects::new(Pid(0), 1, Time(30));
        node.on_invoke(Invocation::new("get", 1), &mut fx);
        assert_eq!(fx.into_parts().response, Some(Value::Unit));
    }

    #[test]
    fn observed_node_counts_quorum_metrics() {
        let p = params5();
        let spec = erase(KvStore::new());
        let (obs, _ring) = Obs::ring(1024);
        let cfg = SimConfig::new(p, DelaySpec::AllMax)
            .with_schedule(Schedule::new().at(Pid(0), Time(0), put(1, 1)).at(
                Pid(1),
                Time(100_000),
                Invocation::new("get", 1),
            ))
            .with_obs(obs.clone());
        let run = simulate(&cfg, |pid| {
            AbdKvNode::new(pid, Arc::clone(&spec), p.n).with_obs(cfg.obs.clone())
        });
        assert!(run.complete());
        // Put = 2 round trips, fast get = 1.
        assert_eq!(obs.metrics.counter("abd.quorum_round_trips").get(), 3);
        assert_eq!(obs.metrics.counter("abd.fast_reads").get(), 1);
        assert_eq!(obs.metrics.counter("abd.read_writebacks").get(), 0);
    }

    #[test]
    fn wire_bytes_stay_constant_per_message() {
        // The whole point of the composition: message size never depends on
        // how many keys the store holds.
        let small =
            AbdMsg::Store { rid: 1, key: 1, ts: MrTs { seq: 1, pid: Pid(0) }, val: Some(1) };
        let tombstone =
            AbdMsg::Store { rid: 1, key: 1, ts: MrTs { seq: 2, pid: Pid(0) }, val: None };
        assert_eq!(small.wire_bytes(), 9 + 8 + 12 + 1 + 8);
        assert_eq!(tombstone.wire_bytes(), 9 + 8 + 12 + 1);
    }

    #[test]
    #[should_panic(expected = "kv-store")]
    fn non_kv_spec_is_refused() {
        let spec = erase(lintime_adt::types::FifoQueue::new());
        let _ = AbdKvNode::new(Pid(0), spec, 4);
    }
}
