//! # lintime-core
//!
//! The primary contribution of Wang, Talmage, Lee, Welch (IPPS 2014):
//! **Algorithm 1**, the first algorithm implementing linearizable shared
//! objects of *arbitrary* data type in a partially synchronous
//! message-passing system with every operation faster than the folklore
//! `2d`, plus the folklore baselines it is compared against and the
//! deliberately-too-fast strawmen used by the lower-bound experiments.
//!
//! * [`wtlw`] — Algorithm 1 ([`wtlw::WtlwNode`]): pure accessors in `d − X`,
//!   pure mutators in `X + ε`, mixed operations in `d + ε`;
//! * [`centralized`] — folklore baseline 1 (`≤ 2d` via a coordinator);
//! * [`broadcast`] — folklore baseline 2 (`≈ 2d` via Lamport total-order
//!   broadcast over point-to-point links);
//! * [`naive`] — incorrect optimistic replication (lower-bound victim);
//! * [`batch`] — tick-batched mutator broadcasts: one announcement bundle
//!   per batch tick instead of one broadcast per operation, with the waits
//!   stretched by the tick so linearizability is preserved;
//! * [`reliable`] — recovery layer: acks + retransmission + duplicate
//!   suppression keep Algorithm 1 linearizable on a lossy network, and a
//!   violation detector flags runs the recovery budget could not save;
//! * [`mr_register`] — crash-tolerant majority-quorum register
//!   (Mostéfaoui–Raynal): survives any minority of crashes, fast
//!   one-round-trip reads when quorums agree;
//! * [`quorum_sm`] — crash-tolerant majority-quorum replicated state
//!   machine for **arbitrary** data types: a timestamp-ordered op log with
//!   clock-driven stability, generalizing [`mr_register`];
//! * [`abd_kv`] — per-key composition of quorum registers implementing the
//!   kv-store at register cost per key (locality of linearizability);
//! * [`timestamp`] — `(local time, pid)` lexicographic timestamps;
//! * [`cluster`] — uniform driver + latency statistics over all of the above;
//! * [`backend`] — the [`backend::Backend`] trait: fault-tolerance claims and
//!   uniform construction for every backend, driven by the cross-backend
//!   availability matrix.
//!
//! ## Quick example
//!
//! ```
//! use lintime_adt::prelude::*;
//! use lintime_sim::prelude::*;
//! use lintime_core::cluster::{run_algorithm, Algorithm};
//!
//! let params = ModelParams::default_experiment();
//! let spec = erase(FifoQueue::new());
//! let cfg = SimConfig::new(params, DelaySpec::AllMax).with_schedule(
//!     Schedule::new()
//!         .at(Pid(0), Time(0), Invocation::new("enqueue", 7))
//!         .at(Pid(1), Time(20_000), Invocation::nullary("peek")),
//! );
//! let run = run_algorithm(Algorithm::Wtlw { x: Time(0) }, &spec, &cfg);
//! assert!(run.complete());
//! // The pure mutator responded in X + ε, the pure accessor in d − X,
//! // both far below the folklore 2d = 12000.
//! assert_eq!(run.ops[0].latency(), Some(params.epsilon));
//! assert_eq!(run.ops[1].latency(), Some(params.d));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abd_kv;
pub mod backend;
pub mod batch;
pub mod broadcast;
pub mod centralized;
pub mod cluster;
pub mod construction;
pub mod mr_register;
pub mod naive;
pub mod quorum_sm;
pub mod reliable;
pub mod timestamp;
pub mod wtlw;

/// Convenient re-exports of the most-used items.
pub mod prelude {
    pub use crate::abd_kv::{AbdKvNode, AbdMsg};
    pub use crate::backend::{run_backend, Backend, BackendRun, FaultTolerance, UnsupportedSpec};
    pub use crate::batch::{
        batched_predicted_latency, batched_waits, BatchMsg, BatchTimer, BatchWtlwNode,
    };
    pub use crate::broadcast::BroadcastNode;
    pub use crate::centralized::CentralizedNode;
    pub use crate::cluster::{
        op_stats, run_algorithm, Algorithm, AnyMsg, AnyNode, AnyTimer, OpStats,
    };
    pub use crate::mr_register::{MrMsg, MrNode, MrTs};
    pub use crate::naive::NaiveLocalNode;
    pub use crate::quorum_sm::{QsmMsg, QsmNode, QsmTimer};
    pub use crate::reliable::{run_reliable, RecoveryConfig, RelMsg, RelTimer, ReliableWtlwNode};
    pub use crate::timestamp::Timestamp;
    pub use crate::wtlw::{predicted_latency, Waits, WtlwNode};
}
