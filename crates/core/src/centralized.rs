//! Folklore baseline 1 (Section 1): the centralized algorithm.
//!
//! "Forward each operation invocation in a message to a distinguished
//! process, which computes the result of the operation and sends the result
//! back in a message to the invoker. The operations are linearized through
//! the workings of the distinguished process and each operation takes up to
//! `2d` time."

use lintime_adt::spec::{Invocation, ObjState, ObjectSpec};
use lintime_adt::value::Value;
use lintime_sim::node::{Effects, Node};
use lintime_sim::time::Pid;
use std::sync::Arc;

/// The distinguished process.
pub const COORDINATOR: Pid = Pid(0);

/// Messages of the centralized algorithm.
#[derive(Clone, Debug, PartialEq)]
pub enum CentralMsg {
    /// Invoker → coordinator: execute this.
    Request(Invocation),
    /// Coordinator → invoker: the result.
    Reply(Value),
}

impl CentralMsg {
    /// Estimated serialized size in bytes: tag plus payload.
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            CentralMsg::Request(inv) => inv.wire_bytes(),
            CentralMsg::Reply(v) => v.wire_bytes(),
        }
    }
}

/// Timer type (the centralized algorithm needs no timers).
#[derive(Clone, Debug, PartialEq)]
pub enum NoTimer {}

/// One process of the centralized algorithm. Only the coordinator holds the
/// object; everyone else forwards.
pub struct CentralizedNode {
    pid: Pid,
    object: Option<Box<dyn ObjState>>,
}

impl CentralizedNode {
    /// Create a node; the object lives at [`COORDINATOR`].
    pub fn new(pid: Pid, spec: Arc<dyn ObjectSpec>) -> Self {
        let object = (pid == COORDINATOR).then(|| spec.new_object());
        CentralizedNode { pid, object }
    }
}

impl Node for CentralizedNode {
    type Msg = CentralMsg;
    type Timer = NoTimer;

    fn msg_wire_bytes(msg: &CentralMsg) -> usize {
        msg.wire_bytes()
    }

    fn on_invoke(&mut self, inv: Invocation, fx: &mut Effects<CentralMsg, NoTimer>) {
        if self.pid == COORDINATOR {
            let obj = self.object.as_mut().expect("coordinator holds the object");
            let ret = obj.apply(inv.op, &inv.arg);
            fx.respond(ret);
        } else {
            fx.send(COORDINATOR, CentralMsg::Request(inv));
        }
    }

    fn on_deliver(&mut self, from: Pid, msg: CentralMsg, fx: &mut Effects<CentralMsg, NoTimer>) {
        match msg {
            CentralMsg::Request(inv) => {
                let obj = self.object.as_mut().expect("only the coordinator receives requests");
                let ret = obj.apply(inv.op, &inv.arg);
                fx.send(from, CentralMsg::Reply(ret));
            }
            CentralMsg::Reply(ret) => fx.respond(ret),
        }
    }

    fn on_timer(&mut self, timer: NoTimer, _fx: &mut Effects<CentralMsg, NoTimer>) {
        match timer {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lintime_adt::spec::erase;
    use lintime_adt::types::Register;
    use lintime_sim::delay::DelaySpec;
    use lintime_sim::engine::{simulate, SimConfig};
    use lintime_sim::schedule::Schedule;
    use lintime_sim::time::{ModelParams, Time};

    #[test]
    fn remote_ops_take_two_d() {
        let p = ModelParams::default_experiment();
        let spec = erase(Register::new(0));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
            Schedule::new().at(Pid(1), Time(0), Invocation::new("write", 5)).at(
                Pid(2),
                Time(20_000),
                Invocation::nullary("read"),
            ),
        );
        let run = simulate(&cfg, |pid| CentralizedNode::new(pid, Arc::clone(&spec)));
        assert!(run.complete());
        assert_eq!(run.ops[0].latency(), Some(p.d * 2));
        assert_eq!(run.ops[1].latency(), Some(p.d * 2));
        assert_eq!(run.ops[1].ret, Some(Value::Int(5)));
    }

    #[test]
    fn coordinator_ops_are_instant() {
        let p = ModelParams::default_experiment();
        let spec = erase(Register::new(7));
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(Schedule::new().at(
            COORDINATOR,
            Time(0),
            Invocation::nullary("read"),
        ));
        let run = simulate(&cfg, |pid| CentralizedNode::new(pid, Arc::clone(&spec)));
        assert_eq!(run.ops[0].latency(), Some(Time::ZERO));
        assert_eq!(run.ops[0].ret, Some(Value::Int(7)));
    }

    #[test]
    fn arrival_order_linearizes_concurrent_ops() {
        let p = ModelParams::default_experiment();
        let spec = erase(Register::new(0));
        // p1 writes (closer in delay), p2 reads; both requests race to p0.
        let delay = DelaySpec::matrix_from_fn(4, |i, _| if i == 1 { p.min_delay() } else { p.d });
        let cfg = SimConfig::new(p, delay).with_schedule(
            Schedule::new().at(Pid(1), Time(0), Invocation::new("write", 3)).at(
                Pid(2),
                Time(0),
                Invocation::nullary("read"),
            ),
        );
        let run = simulate(&cfg, |pid| CentralizedNode::new(pid, Arc::clone(&spec)));
        assert!(run.complete());
        // Write arrived first (3600 < 6000), so the read sees 3.
        assert_eq!(run.ops[1].ret, Some(Value::Int(3)));
    }
}
