#!/usr/bin/env python3
"""Gate checker-bench regressions against the committed baselines.

Usage: check_bench_regression.py COMMITTED.json FRESH.json

Both files are `BENCH_checker.json`-shaped: a list of rows with `case`,
`variant`, and `median_ns` keys. A row regresses when the fresh median is
more than REGRESSION_FACTOR times the committed median *and* above the
absolute noise floor — sub-millisecond rows flap with CI scheduling jitter
(the smoke run takes a single sample per measurement), so tiny cases only
inform, never gate. Rows present on only one side are reported but never
fail the gate: new cases land with their first committed baseline, and
removed cases die with it.

Exits non-zero iff at least one row regresses.
"""

import json
import sys

REGRESSION_FACTOR = 2.0
NOISE_FLOOR_NS = 2_000_000  # 2 ms


def load(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    table = {}
    for row in rows:
        table[(row["case"], row["variant"])] = int(row["median_ns"])
    return table


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    committed = load(argv[1])
    fresh = load(argv[2])

    regressions = []
    print(f"{'case':<34} {'variant':<12} {'committed':>12} {'fresh':>12} {'ratio':>7}")
    for key in sorted(committed):
        case, variant = key
        base = committed[key]
        if key not in fresh:
            print(f"{case:<34} {variant:<12} {base:>12} {'(missing)':>12}")
            continue
        now = fresh[key]
        ratio = now / base if base else float("inf")
        gated = now > base * REGRESSION_FACTOR and now > NOISE_FLOOR_NS
        flag = "  REGRESSED" if gated else ""
        print(f"{case:<34} {variant:<12} {base:>12} {now:>12} {ratio:>6.2f}x{flag}")
        if gated:
            regressions.append((case, variant, base, now))
    for key in sorted(set(fresh) - set(committed)):
        print(f"{key[0]:<34} {key[1]:<12} {'(new)':>12} {fresh[key]:>12}")

    if regressions:
        print(
            f"\n{len(regressions)} row(s) regressed beyond "
            f"{REGRESSION_FACTOR}x the committed median "
            f"(noise floor {NOISE_FLOOR_NS} ns):",
            file=sys.stderr,
        )
        for case, variant, base, now in regressions:
            print(f"  {case} / {variant}: {base} ns -> {now} ns", file=sys.stderr)
        return 1
    print("\nno regressions beyond the gate threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
