#!/usr/bin/env python3
"""Gate checker-bench regressions against the committed baselines.

Usage: check_bench_regression.py COMMITTED.json FRESH.json
       check_bench_regression.py --streaming FRESH.json [FLOOR_OPS_PER_SEC]
       check_bench_regression.py --serve FRESH.json [FLOOR_OPS_PER_SEC] [MIN_PEAK_IN_FLIGHT]

Default mode: both files are `BENCH_checker.json`-shaped, a list of rows
with `case`, `variant`, and `median_ns` keys. A row regresses when the
fresh median is more than REGRESSION_FACTOR times the committed median
*and* above the absolute noise floor — sub-millisecond rows flap with CI
scheduling jitter (the smoke run takes a single sample per measurement),
so tiny cases only inform, never gate. Rows present on only one side are
reported but never fail the gate: new cases land with their first
committed baseline, and removed cases die with it.

Streaming mode (`--streaming`): the file is `BENCH_streaming.json`-shaped
(rows with `ops_per_sec`, `peak_resident_ops`, `flush_ops`, `concurrency`,
`verdict`) and the gates are absolute, not relative:

  1. every row's verdict is "linearizable" (the generated streams are
     legal by construction);
  2. every row's throughput is at least FLOOR_OPS_PER_SEC (default 1e6);
  3. memory is flat — every row's peak resident ops stay within a small
     constant multiple of (flush window + concurrency), and when the same
     case family appears at two stream lengths, the longer stream's peak
     is at most FLAT_FACTOR times the shorter one's.

Serve mode (`--serve`): the file is `BENCH_serve.json`-shaped — one
roll-up row (`case == "serve"`) followed by one `serve/shardN` row per
shard — and the gates are absolute:

  1. every row's verdict is "linearizable" (composition must certify
     every shard, and the roll-up must agree);
  2. zero envelope violations anywhere: every completed operation's
     service latency stays within its class's Algorithm 1 bound;
  3. the open-loop load fully drains: roll-up ops == arrivals, and no
     shard reports unadmitted arrivals or a truncated checker;
  4. throughput is at least FLOOR_OPS_PER_SEC (default 2e4 — wall-clock
     ops/s of the whole sharded deployment, deliberately conservative
     for CI scheduling jitter);
  5. the roll-up's peak in-flight count is at least MIN_PEAK_IN_FLIGHT
     (default 0, i.e. only gated when the caller passes a target — the
     committed baseline is checked with 100000);
  6. checker memory stays flat: each shard's peak resident ops is
     bounded by a constant multiple of its flush window (covering the
     1.5x backoff growth while waiting for a canonical cut), never by
     the arrival backlog.

Exits non-zero iff at least one gate fails.
"""

import json
import sys

REGRESSION_FACTOR = 2.0
NOISE_FLOOR_NS = 2_000_000  # 2 ms

STREAM_FLOOR_OPS_PER_SEC = 1_000_000.0
FLAT_FACTOR = 1.5
# peak_resident_ops <= RESIDENT_FLUSH_FACTOR * flush_ops
#                      + RESIDENT_CONCURRENCY_FACTOR * concurrency
RESIDENT_FLUSH_FACTOR = 2
RESIDENT_CONCURRENCY_FACTOR = 64

SERVE_FLOOR_OPS_PER_SEC = 20_000.0
# peak_resident_ops <= SERVE_RESIDENT_FLUSH_FACTOR * flush_ops + slack.
# Larger than the streaming factor because a shard's flush window grows
# 1.5x per failed flush until the generator's producer/consumer pairing
# hands the checker a canonical cut (see docs/SERVING.md).
SERVE_RESIDENT_FLUSH_FACTOR = 8
SERVE_RESIDENT_SLACK = 512


def load(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    table = {}
    for row in rows:
        table[(row["case"], row["variant"])] = int(row["median_ns"])
    return table


def check_streaming(path, floor):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    failures = []
    by_family = {}
    print(f"{'case':<34} {'ops/s':>12} {'peak res':>9} {'verdict':>16}")
    for row in rows:
        case = row["case"]
        ops_per_sec = float(row["ops_per_sec"])
        peak = int(row["peak_resident_ops"])
        bound = RESIDENT_FLUSH_FACTOR * int(row["flush_ops"]) + (
            RESIDENT_CONCURRENCY_FACTOR * int(row["concurrency"])
        )
        problems = []
        if row["verdict"] != "linearizable":
            problems.append(f"verdict {row['verdict']!r}")
        if ops_per_sec < floor:
            problems.append(f"throughput {ops_per_sec:.0f} < floor {floor:.0f}")
        if peak > bound:
            problems.append(f"peak resident {peak} > bound {bound}")
        flag = "  FAILED: " + "; ".join(problems) if problems else ""
        print(f"{case:<34} {ops_per_sec:>12.0f} {peak:>9} {row['verdict']:>16}{flag}")
        failures.extend((case, p) for p in problems)
        # "queue/1000000ops_p4" -> family "queue/..._p4", keyed for the
        # longer-stream-no-bigger comparison.
        family = (case.split("/")[0], row["concurrency"], row["flush_ops"])
        by_family.setdefault(family, []).append((int(row["ops"]), peak, case))
    for sized in by_family.values():
        sized.sort()
        (small_ops, small_peak, _), (big_ops, big_peak, big_case) = sized[0], sized[-1]
        if big_ops > small_ops and big_peak > small_peak * FLAT_FACTOR:
            failures.append(
                (
                    big_case,
                    f"memory not flat: {big_ops} ops peaked at {big_peak} "
                    f"vs {small_ops} ops at {small_peak}",
                )
            )
    if failures:
        print(f"\n{len(failures)} streaming gate failure(s):", file=sys.stderr)
        for case, problem in failures:
            print(f"  {case}: {problem}", file=sys.stderr)
        return 1
    print("\nall streaming gates passed")
    return 0


def check_serve(path, floor, min_in_flight):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    rollups = [r for r in rows if r["case"] == "serve"]
    shards = [r for r in rows if r["case"].startswith("serve/shard")]
    if len(rollups) != 1 or not shards:
        print(f"{path}: expected one roll-up row and >=1 shard rows", file=sys.stderr)
        return 2
    rollup = rollups[0]
    failures = []

    def gate(case, ok, problem):
        if not ok:
            failures.append((case, problem))

    gate("serve", rollup["verdict"] == "linearizable", f"verdict {rollup['verdict']!r}")
    gate(
        "serve",
        int(rollup["envelope_violations"]) == 0,
        f"{rollup['envelope_violations']} envelope violations",
    )
    gate(
        "serve",
        int(rollup["ops"]) == int(rollup["arrivals"]),
        f"drained {rollup['ops']} of {rollup['arrivals']} arrivals",
    )
    ops_per_sec = float(rollup["ops_per_sec"])
    gate("serve", ops_per_sec >= floor, f"throughput {ops_per_sec:.0f} < floor {floor:.0f}")
    peak = int(rollup["peak_in_flight"])
    gate(
        "serve",
        peak >= min_in_flight,
        f"peak in-flight {peak} < target {min_in_flight}",
    )
    print(
        f"serve roll-up: {rollup['shards']} shards x {rollup['workers']} workers, "
        f"{rollup['ops']} ops at {ops_per_sec:.0f} ops/s, "
        f"peak in-flight {peak}, verdict {rollup['verdict']}"
    )
    print(f"{'case':<16} {'ops':>9} {'peak res':>9} {'bound':>7} {'verdict':>16}")
    for row in shards:
        case = row["case"]
        bound = SERVE_RESIDENT_FLUSH_FACTOR * int(row["flush_ops"]) + SERVE_RESIDENT_SLACK
        resident = int(row["peak_resident_ops"])
        problems = []
        if row["verdict"] != "linearizable":
            problems.append(f"verdict {row['verdict']!r}")
        if int(row["envelope_violations"]) != 0:
            problems.append(f"{row['envelope_violations']} envelope violations")
        if int(row["unadmitted"]) != 0:
            problems.append(f"{row['unadmitted']} unadmitted arrivals")
        if row["truncated"]:
            problems.append("checker truncated")
        if resident > bound:
            problems.append(f"peak resident {resident} > bound {bound}")
        flag = "  FAILED: " + "; ".join(problems) if problems else ""
        print(f"{case:<16} {row['ops']:>9} {resident:>9} {bound:>7} {row['verdict']:>16}{flag}")
        failures.extend((case, p) for p in problems)
    if failures:
        print(f"\n{len(failures)} serve gate failure(s):", file=sys.stderr)
        for case, problem in failures:
            print(f"  {case}: {problem}", file=sys.stderr)
        return 1
    print("\nall serve gates passed")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--serve":
        if len(argv) not in (3, 4, 5):
            print(__doc__, file=sys.stderr)
            return 2
        floor = float(argv[3]) if len(argv) >= 4 else SERVE_FLOOR_OPS_PER_SEC
        min_in_flight = int(argv[4]) if len(argv) == 5 else 0
        return check_serve(argv[2], floor, min_in_flight)
    if len(argv) >= 2 and argv[1] == "--streaming":
        if len(argv) not in (3, 4):
            print(__doc__, file=sys.stderr)
            return 2
        floor = float(argv[3]) if len(argv) == 4 else STREAM_FLOOR_OPS_PER_SEC
        return check_streaming(argv[2], floor)
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    committed = load(argv[1])
    fresh = load(argv[2])

    regressions = []
    print(f"{'case':<34} {'variant':<12} {'committed':>12} {'fresh':>12} {'ratio':>7}")
    for key in sorted(committed):
        case, variant = key
        base = committed[key]
        if key not in fresh:
            print(f"{case:<34} {variant:<12} {base:>12} {'(missing)':>12}")
            continue
        now = fresh[key]
        ratio = now / base if base else float("inf")
        gated = now > base * REGRESSION_FACTOR and now > NOISE_FLOOR_NS
        flag = "  REGRESSED" if gated else ""
        print(f"{case:<34} {variant:<12} {base:>12} {now:>12} {ratio:>6.2f}x{flag}")
        if gated:
            regressions.append((case, variant, base, now))
    for key in sorted(set(fresh) - set(committed)):
        print(f"{key[0]:<34} {key[1]:<12} {'(new)':>12} {fresh[key]:>12}")

    if regressions:
        print(
            f"\n{len(regressions)} row(s) regressed beyond "
            f"{REGRESSION_FACTOR}x the committed median "
            f"(noise floor {NOISE_FLOOR_NS} ns):",
            file=sys.stderr,
        )
        for case, variant, base, now in regressions:
            print(f"  {case} / {variant}: {base} ns -> {now} ns", file=sys.stderr)
        return 1
    print("\nno regressions beyond the gate threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
