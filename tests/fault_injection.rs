//! End-to-end fault-injection acceptance tests.
//!
//! The paper's model (Section 2.2) assumes reliable channels; Algorithm 1 is
//! correct *under that assumption*. These tests break the assumption with a
//! seeded [`FaultPlan`] and verify the whole pipeline behaves honestly:
//!
//! * bare `WtlwNode` under message drops produces runs the checker refutes
//!   (or that never complete), while the same faults under the
//!   [`ReliableWtlwNode`] recovery wrapper yield complete, checker-verified
//!   linearizable runs;
//! * crashes and stalls are detected and recorded — a compromised run is
//!   surfaced as incomplete / truncated / suspect, never silently certified;
//! * fault injection is deterministic: identical seeds reproduce identical
//!   faulty runs, tick for tick.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_sim::faults::InjectedFault;
use lintime_sim::prelude::*;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

/// One write at p0, then a read at p1 long after the write has responded.
/// Under real-time order the read *must* observe the write.
fn write_then_read(value: i64) -> Schedule {
    Schedule::new().at(Pid(0), Time(0), Invocation::new("write", value)).at(
        Pid(1),
        Time(200_000),
        Invocation::nullary("read"),
    )
}

#[test]
fn dropped_announcement_breaks_bare_wtlw() {
    // Drop the very first message on link 0→1: p0's write announcement.
    // Bare Algorithm 1 has no retransmission, so p1 serves its read from a
    // log that is missing the write — a stale read the checker must refute.
    let p = params();
    let spec = erase(Register::new(0));
    let cfg = SimConfig::new(p, DelaySpec::AllMax)
        .with_faults(FaultPlan::new(7).drop_exact(Pid(0), Pid(1), 0))
        .with_schedule(write_then_read(9));
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(run.complete(), "bare run should still respond everywhere: {run}");
    assert_eq!(run.faults.len(), 1, "exactly the one injected drop: {:?}", run.faults);
    assert!(matches!(run.faults[0], InjectedFault::Dropped { from: Pid(0), to: Pid(1), k: 0, .. }));
    assert_eq!(run.ops[1].ret, Some(Value::Int(0)), "the read is stale: {run}");
    let history = History::from_run(&run).unwrap();
    assert_eq!(
        check(&spec, &history),
        Verdict::NotLinearizable,
        "a stale read after the write responded must be refuted"
    );
}

#[test]
fn recovery_wrapper_survives_the_same_drop() {
    // Same fault plan, same schedule — but the reliable wrapper retransmits
    // the lost announcement, and the run certifies.
    let p = params();
    let spec = erase(Register::new(0));
    let recovery = RecoveryConfig { rto: p.d * 2, max_retries: 2 };
    let cfg = SimConfig::new(p, DelaySpec::AllMax)
        .with_faults(FaultPlan::new(7).drop_exact(Pid(0), Pid(1), 0))
        .with_schedule(write_then_read(9));
    let run = run_reliable(&spec, &cfg, Time::ZERO, recovery);
    assert!(run.complete(), "{run}");
    assert!(!run.is_suspect(), "clean recovery must not be flagged: {:?}", run.suspect);
    assert!(run.certifiable());
    assert_eq!(run.ops[1].ret, Some(Value::Int(9)), "the read sees the write: {run}");
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}

#[test]
fn crashed_process_is_detected_not_certified() {
    // p0 crashes right after invoking its write: the operation never
    // responds, the crash is recorded, and the checker refuses the run.
    let p = params();
    let spec = erase(Register::new(0));
    let cfg = SimConfig::new(p, DelaySpec::AllMax)
        .with_faults(FaultPlan::new(1).crash(Pid(0), Time(1)))
        .with_schedule(write_then_read(9));
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(!run.complete(), "the crashed writer's op must stay pending: {run}");
    assert!(
        run.faults.iter().any(|f| matches!(f, InjectedFault::Crashed { pid: Pid(0), .. })),
        "{:?}",
        run.faults
    );
    let err = History::from_run(&run).unwrap_err();
    assert!(err.contains("pending") || err.contains("incomplete"), "{err}");

    // The recovery wrapper cannot resurrect a dead process either — but it
    // must equally refuse to certify.
    let recovery = RecoveryConfig::standard(p);
    let rec = run_reliable(&spec, &cfg, Time::ZERO, recovery);
    assert!(!rec.complete() || rec.is_suspect(), "never silently certified: {rec}");
}

#[test]
fn stall_windows_are_recorded_and_harmless_when_short() {
    // p1 freezes for one ε right as the announcement arrives; the deferred
    // events fire at the window's end. The stall is recorded, and because
    // the freeze is short the run still completes and certifies.
    let p = params();
    let spec = erase(Register::new(0));
    let cfg = SimConfig::new(p, DelaySpec::AllMax)
        .with_faults(FaultPlan::new(2).stall(Pid(1), p.d, p.d + p.epsilon))
        .with_schedule(write_then_read(4));
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(
        run.faults.iter().any(|f| matches!(f, InjectedFault::Stalled { pid: Pid(1), .. })),
        "{:?}",
        run.faults
    );
    assert!(run.complete(), "{run}");
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable(), "{run}");
}

#[test]
fn event_cap_truncation_is_refused_by_the_checker() {
    let p = params();
    let spec = erase(Register::new(0));
    let mut cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(write_then_read(1));
    cfg.max_events = 3;
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(run.truncated);
    assert!(!run.certifiable());
    let err = History::from_run(&run).unwrap_err();
    assert!(err.contains("truncated"), "{err}");
}

#[test]
fn identical_seeds_reproduce_identical_faulty_runs() {
    let p = params();
    let spec = erase(FifoQueue::new());
    let mut schedule = Schedule::new();
    let mut rng = SplitMix64::seed_from_u64(99);
    let mut free = vec![Time::ZERO; p.n];
    for i in 0..10 {
        let pid = rng.gen_range(0..p.n);
        let at = free[pid] + Time(rng.gen_range(0..2 * p.d.as_ticks()));
        let inv = if i % 3 == 0 {
            Invocation::new("enqueue", i as i64)
        } else {
            Invocation::nullary("peek")
        };
        schedule = schedule.at(Pid(pid), at, inv);
        free[pid] = at + p.d + p.u + p.epsilon + Time(1);
    }
    let cfg_with = |fault_seed: u64| {
        SimConfig::new(p, DelaySpec::UniformRandom { seed: 5 })
            .with_faults(FaultPlan::new(fault_seed).drop_all(0.25).duplicate_all(0.10))
            .with_schedule(schedule.clone())
            .recording_all()
    };
    let a = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg_with(42));
    let b = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg_with(42));
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.msgs, b.msgs);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.errors, b.errors);
    assert!(!a.faults.is_empty(), "a 25% drop rate over 10 ops must inject something");

    // A different fault seed makes different decisions on the same run.
    let c = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg_with(43));
    assert_ne!(a.faults, c.faults);
}

#[test]
fn recovery_under_random_drops_is_flagged_or_linearizable() {
    // The tentpole guarantee, end to end: for every seed, a recovered run is
    // either explicitly suspect (its retransmission budget was exhausted or
    // the frontier detector fired) or it is checker-verified linearizable.
    let p = params();
    let spec = erase(Register::new(0));
    let recovery = RecoveryConfig { rto: p.d * 2, max_retries: 2 };
    for seed in 0u64..12 {
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_faults(FaultPlan::new(seed).drop_all(0.15))
            .with_schedule(
                Schedule::new()
                    .at(Pid(0), Time(0), Invocation::new("write", 7))
                    .at(Pid(2), Time(0), Invocation::new("write", 8))
                    .at(Pid(1), Time(400_000), Invocation::nullary("read"))
                    .at(Pid(3), Time(400_000), Invocation::nullary("read")),
            );
        let run = run_reliable(&spec, &cfg, Time::ZERO, recovery);
        assert!(run.complete(), "seed {seed}: {run}");
        if run.is_suspect() {
            continue; // honestly flagged — nothing more to prove
        }
        let history = History::from_run(&run).unwrap();
        assert!(
            check(&spec, &history).is_linearizable(),
            "seed {seed}: unflagged recovered run must linearize: {run}"
        );
    }
}
