//! Failure injection: the model assumptions are *necessary*, not just
//! sufficient. Give the adversary one message slower than `d`, or one clock
//! skewed beyond `ε`, and the standard Algorithm 1 — whose timer constants
//! sit exactly on the model's edge — produces checker-verified
//! non-linearizable runs. Each scenario comes with an admissible control
//! that stays linearizable.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_sim::prelude::*;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

fn verdict_for(cfg: &SimConfig, spec: &std::sync::Arc<dyn ObjectSpec>) -> Verdict {
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, spec, cfg);
    assert!(run.complete(), "{run}");
    let history = History::from_run(&run).unwrap();
    check(spec, &history)
}

#[test]
fn late_message_breaks_linearizability() {
    let p = params();
    let spec = erase(Register::new(0));
    // One channel (p0 → p1) delayed beyond d so that p1 executes its own
    // later-timestamped write before learning of p0's earlier one, replaying
    // them in the wrong order relative to the other replicas.
    let excess = Time(3700); // > 2ε + 1
    let schedule = Schedule::new()
        .at(Pid(0), Time(0), Invocation::new("write", 1))
        .at(Pid(1), p.epsilon + Time(10), Invocation::new("write", 2))
        .at(Pid(1), Time(40_000), Invocation::nullary("read"))
        .at(Pid(2), Time(40_000), Invocation::nullary("read"));
    let bad_delay =
        DelaySpec::matrix_from_fn(p.n, |i, j| if i == 0 && j == 1 { p.d + excess } else { p.d });
    let bad = SimConfig::new(p, bad_delay).with_schedule(schedule.clone());
    assert!(bad.admissible().is_err(), "injected delay must be inadmissible");
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &bad);
    assert!(run.delay_violations > 0);
    let history = History::from_run(&run).unwrap();
    assert_eq!(
        check(&spec, &history),
        Verdict::NotLinearizable,
        "replicas must diverge when a message exceeds d: {run}"
    );

    // Control: the same schedule with the delay at exactly d is fine.
    let good = SimConfig::new(p, DelaySpec::AllMax).with_schedule(schedule);
    assert!(good.admissible().is_ok());
    assert!(verdict_for(&good, &spec).is_linearizable());
}

#[test]
fn excess_clock_skew_breaks_linearizability() {
    let p = params();
    let spec = erase(Register::new(0));
    // p1's clock runs ε + 600 ahead: its write at real t0 carries a larger
    // timestamp than p0's write invoked after it *responded*, so replicas
    // keep p1's value although real-time order demands p0's.
    let skew = p.epsilon + Time(600);
    let schedule = Schedule::new()
        .at(Pid(1), Time(0), Invocation::new("write", 2))
        .at(Pid(0), p.epsilon + Time(300), Invocation::new("write", 1))
        .at(Pid(2), Time(40_000), Invocation::nullary("read"))
        .at(Pid(3), Time(40_000), Invocation::nullary("read"));
    let bad = SimConfig::new(p, DelaySpec::AllMax)
        .with_offsets(vec![Time::ZERO, skew, Time::ZERO, Time::ZERO])
        .with_schedule(schedule.clone());
    assert!(bad.admissible().is_err(), "injected skew must be inadmissible");
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &bad);
    let history = History::from_run(&run).unwrap();
    assert_eq!(
        check(&spec, &history),
        Verdict::NotLinearizable,
        "stale final value must be detected: {run}"
    );

    // Control: skew exactly ε is admissible and correct.
    let good = SimConfig::new(p, DelaySpec::AllMax)
        .with_offsets(vec![Time::ZERO, p.epsilon, Time::ZERO, Time::ZERO])
        .with_schedule(schedule);
    assert!(good.admissible().is_ok());
    assert!(verdict_for(&good, &spec).is_linearizable());
}

#[test]
fn too_fast_message_is_harmless_but_detected() {
    // Delays *below* d − u violate admissibility but cannot hurt this
    // algorithm (information arriving early is never wrong) — the run stays
    // linearizable while the violation is still reported.
    let p = params();
    let spec = erase(FifoQueue::new());
    let fast = DelaySpec::Constant(p.min_delay() - Time(500));
    let cfg = SimConfig::new(p, fast).with_schedule(
        Schedule::new().at(Pid(0), Time(0), Invocation::new("enqueue", 1)).at(
            Pid(1),
            Time(20_000),
            Invocation::nullary("dequeue"),
        ),
    );
    assert!(cfg.admissible().is_err());
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(run.delay_violations > 0);
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}

#[test]
fn engine_rejects_protocol_misuse() {
    // The Section 2.2 user constraint (one pending op per process) is
    // enforced and reported rather than silently corrupting the run.
    let p = params();
    let spec = erase(FifoQueue::new());
    let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(
        Schedule::new().at(Pid(0), Time(0), Invocation::nullary("dequeue")).at(
            Pid(0),
            Time(1),
            Invocation::nullary("dequeue"),
        ), // overlaps
    );
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert_eq!(run.errors.len(), 1);
    assert!(run.errors[0].contains("pending"));
    assert_eq!(run.ops.len(), 1, "the offending invocation is dropped");
}
