//! Acceptance tests for the crash-tolerant quorum backend and the
//! cross-backend availability matrix.
//!
//! The headline claims, verified over many differential-fuzz seeds:
//!
//! * with `n = 5` and two injected crashes (the largest tolerated minority)
//!   the MR quorum register completes the *entire* surviving workload — no
//!   truncation, and every pending operation is attributable to the crash
//!   of its own invoker — and each history passes the pending-aware
//!   linearizability checker;
//! * quorum reads racing concurrent writes linearize on every seed;
//! * the recovery wrapper under *combined* drops + duplicates + stalls on
//!   one seed is never silently wrong: every unflagged run is certified.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_core::reliable::{run_reliable, RecoveryConfig};
use lintime_sim::prelude::*;
use lintime_sim::rng::SplitMix64;

fn params5() -> ModelParams {
    let base = ModelParams::default_experiment();
    ModelParams::new(5, base.d, base.u, base.epsilon)
}

/// A seeded register workload over all `n` processes: distinct-value writes
/// at random times, then two rounds of reads from every process. Processes
/// that will crash still get invocations — their pending ops must be
/// attributed honestly, not silently lost.
fn register_workload(p: ModelParams, seed: u64) -> Schedule {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x011A_B1E5);
    let mut schedule = Schedule::new();
    let mut next_free = vec![Time::ZERO; p.n];
    for w in 0..6 {
        let pid = rng.gen_range(0usize..p.n);
        let at = next_free[pid] + Time(rng.gen_range(0i64..2 * p.d.as_ticks()));
        next_free[pid] = at + p.d * 6;
        schedule = schedule.at(Pid(pid), at, Invocation::new("write", w + 1));
    }
    let mut base = *next_free.iter().max().unwrap();
    for _ in 0..2 {
        for (i, nf) in next_free.iter_mut().enumerate() {
            let at = base.max(*nf) + Time(rng.gen_range(0i64..p.d.as_ticks()));
            *nf = at + p.d * 6;
            schedule = schedule.at(Pid(i), at, Invocation::nullary("read"));
        }
        base = *next_free.iter().max().unwrap();
    }
    schedule
}

#[test]
fn mr_register_survives_two_crashes_on_fifty_seeds() {
    // The acceptance criterion: n = 5, two crashes (⌊(n−1)/2⌋, the claimed
    // maximum), 50 differential-fuzz seeds. Every run must complete the full
    // surviving workload and linearize.
    let p = params5();
    let tol = Algorithm::MrRegister.tolerance(p);
    assert_eq!(tol.crashes, 2);
    for seed in 0..50u64 {
        let spec = erase(Register::new(0));
        // Crash the two highest pids mid-workload so in-flight operations
        // (not just unstarted ones) get cut.
        let crash_at = Time(1 + (seed as i64 % 17) * 1000);
        let plan = FaultPlan::new(seed).crash(Pid(p.n - 2), crash_at).crash(Pid(p.n - 1), crash_at);
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_faults(plan)
            .with_schedule(register_workload(p, seed));
        let out = run_backend(&Algorithm::MrRegister, &spec, &cfg).expect("register supported");
        let run = &out.run;
        assert!(!run.truncated, "seed {seed}: truncated: {run}");
        assert!(!run.is_suspect(), "seed {seed}: suspect: {run}");
        // Full workload completion: every response lost is attributable to
        // the invoker's own crash — surviving processes never starve.
        let pending = run.ops.iter().filter(|o| o.ret.is_none()).count() as u64;
        assert_eq!(
            pending, run.crashed_pending,
            "seed {seed}: a non-crashed invoker starved: {run}"
        );
        let ph = History::from_run_with_pending(run).unwrap();
        assert!(
            check_fast_pending(&spec, &ph).is_linearizable(),
            "seed {seed}: quorum register run did not linearize: {run}"
        );
    }
}

#[test]
fn mr_quorum_reads_race_concurrent_writes() {
    // Reads overlapping in-flight writes exercise both the fast path
    // (uniform quorum timestamps) and the write-back path; every
    // interleaving must linearize, on every seed.
    let p = params5();
    for seed in 0..50u64 {
        let spec = erase(Register::new(0));
        let schedule = Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("write", 1))
            .at(Pid(1), Time(100), Invocation::new("write", 2))
            .at(Pid(2), Time(50), Invocation::nullary("read"))
            .at(Pid(3), Time(150), Invocation::nullary("read"))
            .at(Pid(4), Time(200), Invocation::nullary("read"))
            .at(Pid(2), Time(60_000), Invocation::nullary("read"))
            .at(Pid(3), Time(60_100), Invocation::nullary("read"));
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed }).with_schedule(schedule);
        let out = run_backend(&Algorithm::MrRegister, &spec, &cfg).expect("register supported");
        assert!(out.run.complete(), "seed {seed}: {}", out.run);
        let history = History::from_run(&out.run).unwrap();
        assert!(
            check_fast(&spec, &history).is_linearizable(),
            "seed {seed}: racing reads/writes not linearizable: {}",
            out.run
        );
        // The two late reads are quiescent: both agree on the final value.
        let n_ops = out.run.ops.len();
        assert_eq!(out.run.ops[n_ops - 1].ret, out.run.ops[n_ops - 2].ret, "seed {seed}");
        assert!(out.quorum_round_trips > 0);
    }
}

#[test]
fn reliable_wrapper_honest_under_combined_faults() {
    // Drops, duplicates, and a stall injected together on the same seed:
    // the recovery wrapper must never be *silently* wrong — any run it does
    // not flag as suspect must be certified linearizable (or land in the
    // checker's explicit Unknown bucket).
    let p = params5();
    let recovery = RecoveryConfig { rto: p.d * 2, max_retries: 2 };
    let slack = p.d + p.u + p.epsilon + recovery.backoff_budget() + Time(1);
    let mut flagged = 0u32;
    for seed in 0..24u64 {
        let spec = erase(Register::new(0));
        let plan = FaultPlan::new(seed).drop_all(0.10).duplicate_all(0.20).stall(
            Pid(1),
            Time::ZERO,
            p.d * 5,
        );
        let mut schedule = Schedule::new();
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC0FFEE);
        let mut next_free = vec![Time::ZERO; p.n];
        for w in 0..5 {
            let pid = rng.gen_range(0usize..p.n);
            let at = next_free[pid] + Time(rng.gen_range(0i64..p.d.as_ticks()));
            next_free[pid] = at + slack;
            schedule = schedule.at(Pid(pid), at, Invocation::new("write", w + 1));
        }
        let base = *next_free.iter().max().unwrap() + slack;
        for i in 0..p.n {
            schedule = schedule.at(Pid(i), base + Time(i as i64 * 10), Invocation::nullary("read"));
        }
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_faults(plan)
            .with_schedule(schedule);
        let run = run_reliable(&spec, &cfg, Time::ZERO, recovery);
        assert!(!run.truncated, "seed {seed}: {run}");
        if run.is_suspect() {
            flagged += 1;
            continue;
        }
        assert!(run.complete(), "seed {seed}: unflagged yet incomplete: {run}");
        let history = History::from_run(&run).unwrap();
        let verdict = check_fast(&spec, &history);
        assert_ne!(verdict, Verdict::NotLinearizable, "seed {seed}: unflagged run refuted: {run}");
    }
    // The combined-fault plan must actually bite on some seeds, or this
    // test exercises nothing.
    assert!(flagged > 0, "no seed tripped the recovery layer's detectors");
    assert!(flagged < 24, "every seed was flagged; no certified runs exercised");
}

#[test]
fn matrix_gates_on_confirmed_violations_only() {
    // The CI gate's definition, pinned: a refuted non-suspect run counts
    // only in a tolerated cell. An *untolerated* cell may show refutations
    // (bare WTLW under drops does) without tripping the gate.
    let m = lintime_bench::matrix::availability_matrix(3, &lintime_obs::Obs::off());
    assert_eq!(m.confirmed_violations(), 0, "{}", m.render());
    for cell in &m.cells {
        if !cell.tolerated {
            assert_eq!(cell.confirmed_violations, 0, "gate counted an untolerated cell");
        }
    }
    // JSON artifact shape for CI consumers.
    let json = m.to_json();
    for key in ["\"availability\"", "\"msgs_per_op\"", "\"bytes_per_op\"", "\"quorum_round_trips\""]
    {
        assert!(json.contains(key), "matrix JSON lost {key}");
    }
}
