//! Differential test for the sharded serving layer (`lintime_bench::serve`).
//!
//! The serve path certifies each shard online with a bounded-memory
//! [`StreamChecker`] and composes the per-shard verdicts by the
//! Herlihy–Wing locality theorem. This suite re-derives every per-shard
//! verdict *offline*: with `keep_histories` enabled, each shard report
//! carries the exact completed history its checker consumed, and the
//! full Wing–Gong search (`check_fast`) over that history must agree
//! with the streaming verdict — shard by shard, healthy and corrupted
//! alike. Any divergence means either the online checker certified a
//! window it should have refuted (unsound) or refuted one it should
//! have certified (incomplete), so this is the strongest end-to-end
//! oracle the serving layer has.

use lintime_bench::serve::{serve, ServeConfig};
use lintime_bench::streamgen::StreamKind;
use lintime_check::monitor::check_fast;
use lintime_check::wing_gong::Verdict;
use lintime_sim::time::{ModelParams, Time};

/// A small-but-not-trivial deployment: 4 shards, 2 workers, enough
/// operations per shard that several checker flush windows settle.
fn diff_config(kind: StreamKind) -> ServeConfig {
    let params = ModelParams::new(3, Time(300), Time(120), Time(90));
    ServeConfig {
        kind,
        params,
        tick: Time(90),
        total_ops: 480,
        mean_gap: Time(8),
        flush_ops: 16,
        keep_histories: true,
        ..ServeConfig::new(4, 2)
    }
}

/// Offline verdict class for one shard's kept history, using the same
/// labels the compositional roll-up uses.
fn offline_class(kind: StreamKind, report: &lintime_bench::serve::ShardReport) -> &'static str {
    let history = report.history.as_ref().expect("keep_histories must retain every shard history");
    assert_eq!(
        history.ops.len(),
        report.ops as usize,
        "kept history must cover every completed op of shard {}",
        report.shard
    );
    match check_fast(&kind.spec(), history) {
        Verdict::Linearizable(_) => "linearizable",
        Verdict::NotLinearizable => "not-linearizable",
        Verdict::Unknown => "unknown",
    }
}

#[test]
fn healthy_shards_agree_with_offline_wing_gong_for_every_adt() {
    for kind in [StreamKind::Queue, StreamKind::Register, StreamKind::PriorityQueue] {
        let cfg = diff_config(kind);
        let report = serve(&cfg).expect("serve");
        assert_eq!(report.verdicts.class(), "linearizable", "{}: composed verdict", kind.label());
        for shard in &report.shard_reports {
            let offline = offline_class(kind, shard);
            assert_eq!(
                shard.verdict_class,
                offline,
                "{} shard {}: online vs offline verdict",
                kind.label(),
                shard.shard
            );
            assert_eq!(offline, "linearizable", "{} shard {}", kind.label(), shard.shard);
        }
    }
}

#[test]
fn corrupted_shard_is_attributed_by_both_online_and_offline_checkers() {
    let mut cfg = diff_config(StreamKind::Queue);
    cfg.corrupt_shard = Some(2);
    let report = serve(&cfg).expect("serve");

    // Online: the composed verdict refutes, and attributes exactly shard 2.
    assert_eq!(report.verdicts.class(), "not-linearizable");
    assert_eq!(report.verdicts.violating_shards(), vec!["shard-2"]);

    // Offline: replaying each kept history through the full Wing–Gong
    // search reproduces the same per-shard split. The streaming verdict is
    // a sound refutation of a settled window, so the whole corrupted
    // history must be offline-refutable too — and only that one.
    for shard in &report.shard_reports {
        let offline = offline_class(StreamKind::Queue, shard);
        let expected = if shard.shard == 2 { "not-linearizable" } else { "linearizable" };
        assert_eq!(shard.verdict_class, expected, "online shard {}", shard.shard);
        assert_eq!(offline, expected, "offline shard {}", shard.shard);
    }
}

#[test]
fn differential_agreement_is_seed_stable() {
    // The oracle must hold across generator seeds, not just the default:
    // different seeds change the Zipf routing, the mix draws, and where
    // the admission barriers land relative to producer/consumer pairs.
    for seed in [1, 7, 42] {
        let mut cfg = diff_config(StreamKind::Queue);
        cfg.seed = seed;
        let report = serve(&cfg).expect("serve");
        for shard in &report.shard_reports {
            assert_eq!(
                shard.verdict_class,
                offline_class(StreamKind::Queue, shard),
                "seed {seed} shard {}",
                shard.shard
            );
        }
    }
}
