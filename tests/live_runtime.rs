//! Integration smoke tests for the real-threads runtime: the same node code
//! as the simulator, exercised on actual parallel hardware with injected
//! delays and skew, then machine-checked.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;

use lintime_core::wtlw::WtlwNode;
use lintime_runtime::prelude::*;
use lintime_sim::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn live_params() -> (ModelParams, Duration) {
    // d = 300 ticks × 200 µs = 60 ms; jitter ≪ u = 120 ticks.
    (ModelParams::new(3, Time(300), Time(120), Time(90)), Duration::from_micros(200))
}

#[test]
fn live_register_with_skewed_clocks() {
    let (p, tick) = live_params();
    let mut cfg = LiveConfig::new(p, tick, DelaySpec::Constant(p.min_delay() + Time(30)));
    cfg.offsets = vec![Time(0), Time(80), Time(-10)];
    let spec = erase(Register::new(0));
    let schedule = vec![
        TimedInvocation { pid: Pid(0), at: Time(10), inv: Invocation::new("write", 5) },
        TimedInvocation { pid: Pid(1), at: Time(900), inv: Invocation::nullary("read") },
        TimedInvocation { pid: Pid(2), at: Time(1800), inv: Invocation::nullary("read") },
    ];
    let run = run_live(&cfg, &schedule, |pid| WtlwNode::new(pid, Arc::clone(&spec), p, Time::ZERO));
    assert!(run.complete(), "{run}");
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert_eq!(run.ops[1].ret, Some(Value::Int(5)));
    assert_eq!(run.ops[2].ret, Some(Value::Int(5)));
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}

#[test]
fn live_latencies_track_formulas_with_jitter() {
    let (p, tick) = live_params();
    let cfg = LiveConfig::new(p, tick, DelaySpec::AllMin);
    let spec = erase(FifoQueue::new());
    let x = Time(60);
    let schedule = vec![
        TimedInvocation { pid: Pid(0), at: Time(10), inv: Invocation::new("enqueue", 1) },
        TimedInvocation { pid: Pid(1), at: Time(1200), inv: Invocation::nullary("peek") },
        TimedInvocation { pid: Pid(2), at: Time(2400), inv: Invocation::nullary("dequeue") },
    ];
    let run = run_live(&cfg, &schedule, |pid| WtlwNode::new(pid, Arc::clone(&spec), p, x));
    assert!(run.complete(), "{run}");
    let tol = Time(45);
    let checks = [
        (0usize, x + p.epsilon), // enqueue: X + ε
        (1, p.d - x),            // peek: d − X
        (2, p.d + p.epsilon),    // dequeue: d + ε
    ];
    for (idx, formula) in checks {
        let lat = run.ops[idx].latency().unwrap();
        assert!(
            lat >= formula && lat <= formula + tol,
            "op {idx}: measured {lat}, formula {formula}"
        );
    }
}

#[test]
fn live_contended_history_linearizes() {
    let (p, tick) = live_params();
    let cfg = LiveConfig::new(p, tick, DelaySpec::UniformRandom { seed: 5 });
    let spec = erase(RmwRegister::new(0));
    // Concurrent fetch-adds from all processes — the Theorem 4 workload, at
    // correct speed: all tickets must be unique.
    let schedule = vec![
        TimedInvocation { pid: Pid(0), at: Time(10), inv: Invocation::new("rmw", 1) },
        TimedInvocation { pid: Pid(1), at: Time(12), inv: Invocation::new("rmw", 1) },
        TimedInvocation { pid: Pid(2), at: Time(14), inv: Invocation::new("rmw", 1) },
        TimedInvocation { pid: Pid(0), at: Time(2000), inv: Invocation::nullary("read") },
    ];
    let run = run_live(&cfg, &schedule, |pid| WtlwNode::new(pid, Arc::clone(&spec), p, Time::ZERO));
    assert!(run.complete(), "{run}");
    let mut tickets: Vec<i64> =
        run.ops[..3].iter().filter_map(|o| o.ret.as_ref().and_then(Value::as_int)).collect();
    tickets.sort_unstable();
    assert_eq!(tickets, vec![0, 1, 2], "duplicate tickets issued");
    assert_eq!(run.ops[3].ret, Some(Value::Int(3)));
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}

#[test]
fn live_baselines_work_too() {
    // The AnyNode dispatch runs unchanged on threads: the centralized and
    // broadcast baselines stay linearizable live (and slower than WTLW).
    use lintime_core::cluster::{Algorithm, AnyNode};
    let (p, tick) = live_params();
    let cfg = LiveConfig::new(p, tick, DelaySpec::AllMin);
    let spec = erase(FifoQueue::new());
    let schedule = vec![
        TimedInvocation { pid: Pid(1), at: Time(10), inv: Invocation::new("enqueue", 4) },
        TimedInvocation { pid: Pid(2), at: Time(1500), inv: Invocation::nullary("peek") },
    ];
    for algo in [Algorithm::Centralized, Algorithm::Broadcast] {
        let run = run_live(&cfg, &schedule, |pid| AnyNode::build(algo, pid, Arc::clone(&spec), p));
        assert!(run.complete(), "{algo:?}: {run}");
        assert!(run.errors.is_empty(), "{algo:?}: {:?}", run.errors);
        assert_eq!(run.ops[1].ret, Some(Value::Int(4)));
        let history = History::from_run(&run).unwrap();
        assert!(check(&spec, &history).is_linearizable());
        // Folklore: both ops at least 2(d − u) even live.
        for op in &run.ops {
            assert!(op.latency().unwrap() >= (p.d - p.u) * 2 - Time(5), "{algo:?} {op:?}");
        }
    }
}

#[test]
fn live_crash_tolerant_backends_work_too() {
    // The quorum register and the recovery wrapper route through the same
    // AnyNode dispatch, so they run unchanged on threads as well.
    use lintime_core::cluster::{Algorithm, AnyNode};
    use lintime_core::reliable::RecoveryConfig;
    let (p, tick) = live_params();
    let mut cfg = LiveConfig::new(p, tick, DelaySpec::AllMin);
    // The recovery wrapper stretches its inner timers by the retransmission
    // backoff budget, so give in-flight operations a longer settle window.
    cfg.settle = p.d * 10;
    let spec = erase(Register::new(0));
    let schedule = vec![
        TimedInvocation { pid: Pid(1), at: Time(10), inv: Invocation::new("write", 6) },
        TimedInvocation { pid: Pid(2), at: Time(2500), inv: Invocation::nullary("read") },
    ];
    let algos = [
        Algorithm::MrRegister,
        Algorithm::ReliableWtlw { x: Time::ZERO, recovery: RecoveryConfig::standard(p) },
    ];
    for algo in algos {
        let run = run_live(&cfg, &schedule, |pid| AnyNode::build(algo, pid, Arc::clone(&spec), p));
        assert!(run.complete(), "{algo:?}: {run}");
        assert!(run.errors.is_empty(), "{algo:?}: {:?}", run.errors);
        assert_eq!(run.ops[1].ret, Some(Value::Int(6)), "{algo:?}");
        let history = History::from_run(&run).unwrap();
        assert!(check(&spec, &history).is_linearizable());
    }
}
