//! End-to-end integration: workload → engine → algorithm → checker →
//! Construction-1 verifier, across data types, algorithms, delay models,
//! clock skews, and tradeoff parameters.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::construction;
use lintime_core::prelude::*;
use lintime_core::wtlw::WtlwNode;
use lintime_sim::prelude::*;
use std::sync::Arc;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

/// A contended workload touching every operation of the type.
fn full_workload(p: ModelParams, spec: &Arc<dyn ObjectSpec>) -> Schedule {
    let mut schedule = Schedule::new();
    let mut t = Time::ZERO;
    // Three rounds; each round invokes every op from a rotating process,
    // with rounds overlapping enough to create real concurrency.
    for round in 0..3usize {
        for (j, meta) in spec.ops().iter().enumerate() {
            let args = spec.suggested_args(meta.name);
            let arg = args[(round + j) % args.len()].clone();
            let pid = Pid((round + j) % p.n);
            schedule = schedule.at(pid, t, Invocation::new(meta.name, arg));
            t += p.d + p.u + p.epsilon + Time(1); // just enough to avoid overlap per pid
        }
    }
    schedule
}

#[test]
fn every_type_linearizable_under_every_delay_model() {
    let p = params();
    for spec in all_types() {
        for delay in [DelaySpec::AllMax, DelaySpec::AllMin, DelaySpec::UniformRandom { seed: 42 }] {
            let cfg = SimConfig::new(p, delay).with_schedule(full_workload(p, &spec));
            let run = run_algorithm(Algorithm::Wtlw { x: Time(1200) }, &spec, &cfg);
            assert!(run.complete(), "{}: incomplete", spec.name());
            assert!(run.errors.is_empty(), "{}: {:?}", spec.name(), run.errors);
            let history = History::from_run(&run).unwrap();
            assert!(
                check(&spec, &history).is_linearizable(),
                "{}: not linearizable\n{run}",
                spec.name()
            );
        }
    }
}

#[test]
fn baselines_are_linearizable_too() {
    let p = params();
    for spec in [erase(FifoQueue::new()), erase(RmwRegister::new(0))] {
        for algo in [Algorithm::Centralized, Algorithm::Broadcast] {
            let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 9 })
                .with_schedule(full_workload(p, &spec));
            let run = run_algorithm(algo, &spec, &cfg);
            assert!(run.complete());
            let history = History::from_run(&run).unwrap();
            assert!(
                check(&spec, &history).is_linearizable(),
                "{} on {}: not linearizable",
                algo.label(),
                spec.name()
            );
        }
    }
}

#[test]
fn skewed_clocks_preserve_correctness_at_every_x() {
    let p = params();
    let spec = erase(FifoQueue::new());
    // Extreme admissible skew: offsets spanning exactly ε.
    let offsets = vec![Time::ZERO, p.epsilon, p.epsilon / 2, p.epsilon / 3];
    for x in [Time::ZERO, Time(2100), p.d - p.epsilon] {
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 4 })
            .with_offsets(offsets.clone())
            .with_schedule(full_workload(p, &spec));
        let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
        assert!(run.complete());
        let history = History::from_run(&run).unwrap();
        assert!(check(&spec, &history).is_linearizable(), "X = {x}");
    }
}

#[test]
fn construction_1_verifies_on_contended_runs() {
    let p = params();
    for seed in 0..5u64 {
        let spec = erase(FifoQueue::new());
        let schedule = Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("enqueue", 1))
            .at(Pid(1), Time(3), Invocation::new("enqueue", 2))
            .at(Pid(2), Time(6), Invocation::nullary("dequeue"))
            .at(Pid(3), Time(9), Invocation::nullary("peek"))
            .at(Pid(0), Time(20_000), Invocation::nullary("peek"))
            .at(Pid(1), Time(20_000), Invocation::nullary("dequeue"));
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed }).with_schedule(schedule);
        let x = Time(600);
        let (run, nodes) = simulate_full(&cfg, |pid| WtlwNode::new(pid, Arc::clone(&spec), p, x));
        assert!(run.complete());
        construction::verify(&run, &nodes, &spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn config_level_shift_preserves_views() {
    // Theorem 1, executable: re-running a shifted configuration yields
    // identical per-process views.
    let p = params();
    let spec = erase(Register::new(0));
    let schedule = Schedule::new()
        .at(Pid(0), Time(0), Invocation::new("write", 5))
        .at(Pid(1), Time(10), Invocation::nullary("read"))
        .at(Pid(2), Time(20_000), Invocation::nullary("read"));
    let cfg = SimConfig::new(p, DelaySpec::Constant(p.d - p.u / 2))
        .with_schedule(schedule)
        .recording_all();
    let base = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);

    let x_vec = vec![Time(300), Time(-300), Time(150), Time::ZERO];
    let shifted_cfg = cfg.shifted(&x_vec);
    let shifted = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &shifted_cfg);

    assert!(base.views_equal(&shifted), "views must be shift-invariant");
    // And the record-level shift agrees with re-execution on op intervals
    // (the re-executed run records ops in the new real-time order, so match
    // records by process).
    let mut record_shift = base.shifted(&x_vec).ops;
    let mut reexec = shifted.ops.clone();
    record_shift.sort_by_key(|o| (o.pid, o.t_invoke));
    reexec.sort_by_key(|o| (o.pid, o.t_invoke));
    for (a, b) in record_shift.iter().zip(&reexec) {
        assert_eq!(a.t_invoke, b.t_invoke);
        assert_eq!(a.t_respond, b.t_respond);
        assert_eq!(a.ret, b.ret);
    }
}

#[test]
fn mixed_algorithms_disagree_only_on_latency_not_values() {
    // The same single-writer workload must produce identical return values
    // under every correct algorithm (determinism of the sequential spec).
    let p = params();
    let spec = erase(RmwRegister::new(0));
    let schedule = Schedule::new()
        .at(Pid(1), Time(0), Invocation::new("write", 5))
        .at(Pid(2), Time(30_000), Invocation::new("rmw", 3))
        .at(Pid(3), Time(60_000), Invocation::nullary("read"));
    let mut value_sets = Vec::new();
    for algo in [Algorithm::Wtlw { x: Time::ZERO }, Algorithm::Centralized, Algorithm::Broadcast] {
        let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(schedule.clone());
        let run = run_algorithm(algo, &spec, &cfg);
        assert!(run.complete());
        let vals: Vec<_> = run.ops.iter().map(|o| o.ret.clone().unwrap()).collect();
        value_sets.push(vals);
    }
    assert!(value_sets.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn quiescence_event_counts_are_bounded() {
    // Eventual Quiescence: event count is linear in ops × n, not unbounded.
    let p = params();
    let spec = erase(FifoQueue::new());
    let ops = 20usize;
    let invocations: Vec<Invocation> =
        (0..ops).map(|i| Invocation::new("enqueue", i as i64)).collect();
    let cfg = SimConfig::new(p, DelaySpec::AllMax).with_schedule(Schedule::new().script(Script {
        pid: Pid(0),
        start: Time::ZERO,
        gap: Time::ZERO,
        invocations,
    }));
    let run = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
    assert!(run.complete());
    // Per enqueue: 1 invoke + 1 respond-timer + 1 add-timer + 1 execute at
    // invoker + (n−1) delivers + (n−1) executes ≈ 4 + 2(n−1) = 10.
    assert!(run.events <= (ops as u64) * 12, "events = {}", run.events);
}

#[test]
fn multi_object_runs_and_locality() {
    // Linearizability is local (§2.3): a product-of-objects run is
    // linearizable, and so is its projection onto each component.
    let p = params();
    let product: Arc<dyn ObjectSpec> = Arc::new(lintime_adt::product::ProductSpec::new(
        "reg+queue",
        vec![("reg", erase(Register::new(0))), ("q", erase(FifoQueue::new()))],
    ));
    let schedule = Schedule::new()
        .at(Pid(0), Time(0), Invocation::new("reg/write", 5))
        .at(Pid(1), Time(3), Invocation::new("q/enqueue", 9))
        .at(Pid(2), Time(6), Invocation::new("q/enqueue", 10))
        .at(Pid(3), Time(10_000), Invocation::nullary("reg/read"))
        .at(Pid(0), Time(12_000), Invocation::nullary("q/dequeue"))
        .at(Pid(1), Time(30_000), Invocation::nullary("q/peek"))
        .at(Pid(2), Time(30_000), Invocation::nullary("reg/read"));
    let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 77 }).with_schedule(schedule);
    let run = run_algorithm(Algorithm::Wtlw { x: Time(600) }, &product, &cfg);
    assert!(run.complete(), "{run}");

    // Whole-product history linearizes.
    let history = History::from_run(&run).unwrap();
    assert!(check(&product, &history).is_linearizable());

    // Each per-object projection linearizes against its own spec, with the
    // namespace stripped.
    for (prefix, component) in [("reg", erase(Register::new(0))), ("q", erase(FifoQueue::new()))] {
        let projected = History {
            ops: history
                .ops
                .iter()
                .filter(|o| o.instance.op.starts_with(&format!("{prefix}/")))
                .map(|o| {
                    let mut o = o.clone();
                    let inner = lintime_adt::product::ProductSpec::split(o.instance.op).unwrap().1;
                    o.instance.op = component.op_meta(inner).expect("component op exists").name;
                    o
                })
                .collect(),
        };
        assert!(!projected.is_empty());
        assert!(
            check(&component, &projected).is_linearizable(),
            "projection onto {prefix} must linearize"
        );
    }
}

#[test]
fn closed_loop_back_to_back_operations() {
    // Every process hammers the object closed-loop (next invocation the
    // instant the previous responds): pipelined announcements, overlapping
    // execute timers, AOPs racing MOP acknowledgements — still linearizable,
    // and throughput matches 1/latency.
    let p = params();
    let spec = erase(FifoQueue::new());
    let per = 12usize;
    let mut schedule = Schedule::new();
    for i in 0..p.n {
        let invocations: Vec<Invocation> = (0..per)
            .map(|k| match (i + k) % 3 {
                0 => Invocation::new("enqueue", (i * 100 + k) as i64),
                1 => Invocation::nullary("peek"),
                _ => Invocation::nullary("dequeue"),
            })
            .collect();
        schedule = schedule.script(Script {
            pid: Pid(i),
            start: Time(i as i64 * 7),
            gap: Time::ZERO,
            invocations,
        });
    }
    let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed: 123 }).with_schedule(schedule);
    let run = run_algorithm(Algorithm::Wtlw { x: Time(1200) }, &spec, &cfg);
    assert!(run.complete(), "{run}");
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert_eq!(run.ops.len(), per * p.n);
    let history = History::from_run(&run).unwrap();
    assert!(check(&spec, &history).is_linearizable());
}

#[test]
#[ignore = "soak: 100-seed randomized sweep; run with --include-ignored"]
fn linearizability_soak() {
    let p = params();
    for spec in all_types() {
        for seed in 0..100u64 {
            let run = lintime_bench::experiments::random_workload_run(p, &spec, seed);
            let history = History::from_run(&run).unwrap();
            assert!(check(&spec, &history).is_linearizable(), "{} seed {seed}: {run}", spec.name());
        }
    }
}
