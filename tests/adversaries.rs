//! Integration tests for the lower-bound adversaries: crossover positions
//! for every theorem, on multiple data types (the paper's Corollaries 1–2),
//! with the standard Algorithm 1 as a control.

use lintime_adt::prelude::*;
use lintime_bounds::prelude::*;
use lintime_core::prelude::*;
use lintime_sim::prelude::*;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

#[test]
fn thm2_crossover_on_queue_and_stack_and_tree() {
    let p = params();
    let bound = formulas::thm2_pure_accessor_lb(p); // 600
    let cases: [(std::sync::Arc<dyn ObjectSpec>, Invocation, Invocation); 3] = [
        (erase(FifoQueue::new()), Invocation::new("enqueue", 7), Invocation::nullary("peek")),
        (erase(Stack::new()), Invocation::new("push", 7), Invocation::nullary("peek")),
        (
            erase(RootedTree::new()),
            Invocation::new("insert", Value::pair(1, 0)),
            Invocation::new("depth", 1),
        ),
    ];
    for (spec, mutator, accessor) in cases {
        for (aop, expect_violation) in [(Time(450), true), (bound, false)] {
            let x = p.d - p.epsilon;
            let mut w = Waits::standard(p, x);
            w.aop_respond = aop;
            let r = thm2_attack(
                p,
                &spec,
                mutator.clone(),
                accessor.clone(),
                aop,
                w.mop_respond,
                Algorithm::WtlwWaits(w),
            );
            assert_eq!(
                r.outcome.violated(),
                expect_violation,
                "{} at aop = {aop}: {:?}",
                spec.name(),
                r.outcome
            );
        }
    }
}

#[test]
fn thm3_crossover_for_write_push_enqueue() {
    // Corollary 1: |Write|, |Push|, |Enqueue| ≥ (1 − 1/n)u.
    let p = params();
    let bound = formulas::thm3_last_sensitive_lb(p, p.n); // 1800
    let probes_queue: Vec<Invocation> = (0..p.n).map(|_| Invocation::nullary("dequeue")).collect();
    let probes_stack: Vec<Invocation> = (0..p.n).map(|_| Invocation::nullary("pop")).collect();
    let cases: [(std::sync::Arc<dyn ObjectSpec>, &'static str, Vec<Invocation>); 3] = [
        (erase(Register::new(0)), "write", vec![Invocation::nullary("read")]),
        (erase(FifoQueue::new()), "enqueue", probes_queue),
        (erase(Stack::new()), "push", probes_stack),
    ];
    for (spec, op, probe) in cases {
        let args: Vec<Value> = (0..p.n as i64).map(|i| Value::Int(10 + i)).collect();
        for (mop, expect_violation) in [(bound - Time(300), true), (bound, false)] {
            let mut w = Waits::standard(p, Time::ZERO);
            w.mop_respond = mop;
            let r = thm3_attack(p, &spec, op, &args, &probe, Algorithm::WtlwWaits(w));
            assert_eq!(
                r.outcome.violated(),
                expect_violation,
                "{}::{op} at mop = {mop}: {:?}",
                spec.name(),
                r.outcome
            );
        }
    }
}

#[test]
fn thm4_crossover_for_rmw_dequeue_pop() {
    // Corollary 2: RMW, Dequeue, Pop ≥ d + min{ε, u, d/3}.
    let p = params();
    let bound = formulas::thm4_pair_free_lb(p); // 7800
                                                // For dequeue/pop the pair-free state needs one element; seed it long
                                                // before the contended pair.
    struct Case {
        spec: std::sync::Arc<dyn ObjectSpec>,
        seed_op: Option<Invocation>,
        op: Invocation,
    }
    let cases = [
        Case { spec: erase(RmwRegister::new(0)), seed_op: None, op: Invocation::new("rmw", 1) },
        Case {
            spec: erase(FifoQueue::new()),
            seed_op: Some(Invocation::new("enqueue", 7)),
            op: Invocation::nullary("dequeue"),
        },
        Case {
            spec: erase(Stack::new()),
            seed_op: Some(Invocation::new("push", 7)),
            op: Invocation::nullary("pop"),
        },
    ];
    for case in cases {
        let prefix: Vec<Invocation> = case.seed_op.iter().cloned().collect();
        for (total, expect_violation) in [(bound - Time(600), true), (bound, false)] {
            let mut w = Waits::standard(p, Time::ZERO);
            w.execute = total - w.add;
            let outcome = thm4_attack_seeded(
                p,
                &case.spec,
                &prefix,
                case.op.clone(),
                case.op.clone(),
                Algorithm::WtlwWaits(w),
            )
            .outcome
            .violated();
            assert_eq!(outcome, expect_violation, "{} at |op| = {total}", case.spec.name());
        }
    }
}

#[test]
fn thm5_applies_to_queue_and_tree_but_not_stack() {
    let p = params();
    // Queue: in-band victim is defeated.
    let spec_q = erase(FifoQueue::new());
    let mut w = Waits::standard(p, Time::ZERO);
    w.aop_respond = p.d + p.m() - Time(600) - p.epsilon;
    let r = thm5_attack(
        p,
        &spec_q,
        "enqueue",
        Value::Int(1),
        Value::Int(2),
        Invocation::nullary("peek"),
        Algorithm::WtlwWaits(w),
    );
    assert!(r.outcome.violated(), "queue in-band victim must fall: {:?}", r.outcome);

    // Stack: the same in-band victim SURVIVES the analogous construction —
    // Section 4.3's observation that push+peek lacks the discriminators
    // (a peek after pushes depends only on the last push).
    let spec_s = erase(Stack::new());
    let r = thm5_attack(
        p,
        &spec_s,
        "push",
        Value::Int(1),
        Value::Int(2),
        Invocation::nullary("peek"),
        Algorithm::WtlwWaits(w),
    );
    assert!(
        !r.outcome.violated(),
        "stack push+peek must survive the Thm 5 schedule: {:?}",
        r.outcome
    );

    // And the classifier agrees: no Theorem 5 witness for stacks.
    let stack = Stack::new();
    let u = Universe::for_type(&stack);
    assert!(classify::check_thm5_hypotheses(&stack, "push", "peek", &u, ExploreLimits::default())
        .is_none());
    let queue = FifoQueue::new();
    let uq = Universe::for_type(&queue);
    assert!(classify::check_thm5_hypotheses(
        &queue,
        "enqueue",
        "peek",
        &uq,
        ExploreLimits::default()
    )
    .is_some());
}

#[test]
fn standard_algorithm_survives_everything() {
    let p = params();
    let std_algo = Algorithm::Wtlw { x: Time(1200) };
    let spec_q = erase(FifoQueue::new());
    let spec_r = erase(RmwRegister::new(0));
    let args: Vec<Value> = (0..p.n as i64).map(Value::Int).collect();

    assert!(!thm2_attack(
        p,
        &spec_q,
        Invocation::new("enqueue", 7),
        Invocation::nullary("peek"),
        p.d - Time(1200),
        Time(1200) + p.epsilon,
        std_algo
    )
    .outcome
    .violated());
    assert!(!thm3_attack(
        p,
        &erase(Register::new(0)),
        "write",
        &args,
        &[Invocation::nullary("read")],
        std_algo
    )
    .outcome
    .violated());
    assert!(!thm4_attack(
        p,
        &spec_r,
        Invocation::new("rmw", 1),
        Invocation::new("rmw", 1),
        std_algo
    )
    .outcome
    .violated());
    assert!(!thm5_attack(
        p,
        &spec_q,
        "enqueue",
        Value::Int(1),
        Value::Int(2),
        Invocation::nullary("peek"),
        std_algo
    )
    .outcome
    .violated());
}

#[test]
fn interference_bound_covers_stack_push_peek() {
    // The pair Theorem 5 cannot touch (Table 3's Push + Peek keeps the
    // previous `d` bound): the generalized Lipton–Sandberg construction
    // still defeats victims with |push| + |peek| < d, and the crossover sits
    // exactly at d.
    let p = params();
    let spec = erase(Stack::new());
    for (aop_cut, expect_violation) in [(Time(600), true), (Time(2), true), (Time(0), false)] {
        let mut w = Waits::standard(p, Time::ZERO);
        // sum = ε + (d − ε − cut) = d − cut.
        w.aop_respond = p.d - p.epsilon - aop_cut;
        let r = interference_attack(
            p,
            &spec,
            Invocation::new("push", 7),
            Invocation::nullary("peek"),
            Algorithm::WtlwWaits(w),
        );
        assert_eq!(r.outcome.violated(), expect_violation, "sum = d - {aop_cut}: {:?}", r.outcome);
    }
    // The same sub-d victim is NOT caught by the Theorem 5 construction —
    // which is why the paper needed the interference bound for stacks...
    let mut w = Waits::standard(p, Time::ZERO);
    w.aop_respond = p.d - p.epsilon - Time(600);
    // ...but wait: thm5_attack on a queue DOES catch it. On a stack, the
    // run it builds happens to be linearizable (peek depends only on the
    // last push).
    let r = thm5_attack(
        p,
        &spec,
        "push",
        Value::Int(1),
        Value::Int(2),
        Invocation::nullary("peek"),
        Algorithm::WtlwWaits(w),
    );
    let _ = r; // outcome depends on overlap specifics; the classifier result
               // (no Thm 5 witness for stacks) is asserted elsewhere.
}
