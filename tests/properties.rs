//! Property-based tests (proptest) on the core invariants:
//!
//! * sequential specifications: prefix closure / determinism / FIFO-LIFO laws;
//! * Theorem 1 identities for random shift vectors;
//! * chop validity (Lemma 2) for random delay matrices;
//! * Algorithm 1 linearizability under randomized schedules, delays, skews,
//!   and X (Theorem 6);
//! * checker ↔ construction agreement.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_sim::fragment::{chop, Fragment};
use lintime_sim::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

/// Strategy: a random invocation for a given type, by index.
fn arb_op_for(spec: Arc<dyn ObjectSpec>) -> impl Strategy<Value = Invocation> {
    let metas: Vec<_> = spec.ops().to_vec();
    (0..metas.len()).prop_flat_map(move |i| {
        let meta = metas[i].clone();
        let args = spec.suggested_args(meta.name);
        (0..args.len()).prop_map(move |j| Invocation::new(meta.name, args[j].clone()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn queue_fifo_law(values in proptest::collection::vec(0i64..100, 1..8)) {
        // Enqueue all, then dequeue all: exact FIFO order.
        let q = FifoQueue::new();
        let mut invs: Vec<Invocation> =
            values.iter().map(|v| Invocation::new("enqueue", *v)).collect();
        invs.extend(values.iter().map(|_| Invocation::nullary("dequeue")));
        let (_, insts) = q.run(&invs);
        let dequeued: Vec<i64> = insts[values.len()..]
            .iter()
            .filter_map(|i| i.ret.as_int())
            .collect();
        prop_assert_eq!(dequeued, values);
    }

    #[test]
    fn stack_lifo_law(values in proptest::collection::vec(0i64..100, 1..8)) {
        let s = Stack::new();
        let mut invs: Vec<Invocation> =
            values.iter().map(|v| Invocation::new("push", *v)).collect();
        invs.extend(values.iter().map(|_| Invocation::nullary("pop")));
        let (_, insts) = s.run(&invs);
        let popped: Vec<i64> = insts[values.len()..]
            .iter()
            .filter_map(|i| i.ret.as_int())
            .collect();
        let mut expect = values.clone();
        expect.reverse();
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn specs_are_deterministic(seed_ops in proptest::collection::vec(0usize..100, 0..10)) {
        // Running the same invocation sequence twice gives identical results.
        for spec in all_types() {
            let metas = spec.ops();
            let invs: Vec<Invocation> = seed_ops
                .iter()
                .map(|i| {
                    let meta = &metas[i % metas.len()];
                    let args = spec.suggested_args(meta.name);
                    Invocation::new(meta.name, args[i % args.len()].clone())
                })
                .collect();
            prop_assert_eq!(spec.run_history(&invs), spec.run_history(&invs));
        }
    }

    #[test]
    fn theorem_1_identities(
        x0 in -900i64..900,
        x1 in -900i64..900,
        x2 in -900i64..900,
        base in 0i64..2400,
    ) {
        // shift(R, x̄): offsets become c − x, matrix delays δ − x_i + x_j.
        let p = params();
        let x = vec![Time(x0), Time(x1), Time(x2), Time::ZERO];
        let delay = DelaySpec::Constant(p.min_delay() + Time(base));
        let cfg = SimConfig::new(p, delay);
        let shifted = cfg.shifted(&x);
        let m = shifted.delay.as_matrix().unwrap();
        for i in 0..p.n {
            prop_assert_eq!(shifted.offsets[i], cfg.offsets[i] - x[i]);
            for j in 0..p.n {
                if i != j {
                    prop_assert_eq!(
                        m[i][j],
                        p.min_delay() + Time(base) - x[i] + x[j]
                    );
                }
            }
        }
        // Shifting by −x̄ undoes the transform.
        let neg: Vec<Time> = x.iter().map(|t| -*t).collect();
        let back = shifted.shifted(&neg);
        prop_assert_eq!(back.offsets, cfg.offsets);
        prop_assert_eq!(back.delay.to_matrix(p), cfg.delay.to_matrix(p));
    }

    #[test]
    fn record_level_shift_matches_reexecution(
        x0 in -450i64..450,
        x1 in -450i64..450,
        seed in 0u64..50,
    ) {
        let p = params();
        let spec = erase(Register::new(0));
        let schedule = Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("write", 5))
            .at(Pid(1), Time(7), Invocation::nullary("read"))
            .at(Pid(2), Time(25_000), Invocation::nullary("read"));
        let base_delay = p.min_delay() + Time((seed as i64 * 37) % (p.u.as_ticks() / 2)) + Time(600);
        let cfg = SimConfig::new(p, DelaySpec::Constant(base_delay))
            .with_schedule(schedule)
            .recording_all();
        let base = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
        prop_assert!(base.complete());

        let x = vec![Time(x0), Time(x1), Time::ZERO, Time::ZERO];
        let re = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg.shifted(&x));
        let mut surgery = base.shifted(&x).ops;
        prop_assert!(base.views_equal(&re), "views change under shift");
        let mut reexec = re.ops.clone();
        surgery.sort_by_key(|o| (o.pid, o.t_invoke));
        reexec.sort_by_key(|o| (o.pid, o.t_invoke));
        for (a, b) in surgery.iter().zip(&reexec) {
            prop_assert_eq!(a.t_invoke, b.t_invoke);
            prop_assert_eq!(a.t_respond, b.t_respond);
            prop_assert_eq!(&a.ret, &b.ret);
        }
    }

    #[test]
    fn chop_satisfies_lemma_2(
        bad_extra in 1i64..2400,
        delta_off in 0i64..2400,
        s in 0usize..4,
        r in 0usize..4,
    ) {
        prop_assume!(s != r);
        let p = params();
        // Pair-wise uniform matrix with exactly one invalid (too large) delay.
        let mut matrix = vec![vec![p.d; p.n]; p.n];
        matrix[s][r] = p.d + Time(bad_extra);
        // A run in which every process messages every other at time 0.
        let msgs: Vec<MsgRecord> = (0..p.n)
            .flat_map(|i| (0..p.n).filter(move |j| *j != i).map(move |j| (i, j)))
            .map(|(i, j)| MsgRecord {
                from: Pid(i),
                to: Pid(j),
                t_send: Time((i * 7 + j) as i64),
                t_recv: Some(Time((i * 7 + j) as i64) + matrix[i][j]),
            })
            .collect();
        let run = Run {
            params: p,
            offsets: vec![Time::ZERO; p.n],
            ops: Vec::new(),
            msgs,
            views: Vec::new(),
            last_time: Time(100_000),
            events: 0,
            errors: Vec::new(),
            delay_violations: 1,
        };
        let delta = p.min_delay() + Time(delta_off);
        let frag: Fragment = chop(&run, &matrix, Pid(s), Pid(r), delta).unwrap();
        prop_assert!(frag.verify_lemma2(p).is_ok(), "{:?}", frag.verify_lemma2(p));
    }

    #[test]
    fn wtlw_always_linearizable(
        seed in 0u64..500,
        x_frac in 0i64..=4,
        skew_seed in 0u64..100,
    ) {
        // Theorem 6 as a property: random schedule, random delays, random
        // admissible skew, random X — every run linearizes.
        let p = params();
        let spec = erase(FifoQueue::new());
        let x = Time((p.d - p.epsilon).as_ticks() * x_frac / 4);
        let mut schedule = Schedule::new();
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let mut free = vec![Time::ZERO; p.n];
        for _ in 0..8 {
            let pid = (next() % p.n as u64) as usize;
            let at = free[pid] + Time((next() % (2 * p.d.as_ticks() as u64)) as i64);
            let inv = match next() % 3 {
                0 => Invocation::new("enqueue", (next() % 50) as i64),
                1 => Invocation::nullary("peek"),
                _ => Invocation::nullary("dequeue"),
            };
            schedule = schedule.at(Pid(pid), at, inv);
            free[pid] = at + p.d + p.u + p.epsilon + Time(1);
        }
        let offsets: Vec<Time> = (0..p.n)
            .map(|i| Time(((skew_seed.wrapping_mul(31).wrapping_add(i as u64 * 97)) % (p.epsilon.as_ticks() as u64 + 1)) as i64))
            .collect();
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_offsets(offsets)
            .with_schedule(schedule);
        prop_assert!(cfg.admissible().is_ok());
        let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
        prop_assert!(run.complete());
        prop_assert!(run.errors.is_empty(), "{:?}", run.errors);
        let history = History::from_run(&run).unwrap();
        prop_assert!(check(&spec, &history).is_linearizable(), "{run}");
    }

    #[test]
    fn arbitrary_sequential_histories_linearize_trivially(
        ops in proptest::collection::vec(0usize..64, 1..10),
        type_idx in 0usize..7,
    ) {
        // Any *sequential* history generated by the spec itself is
        // linearizable (sanity link between spec and checker).
        let spec = all_types().swap_remove(type_idx);
        let metas = spec.ops().to_vec();
        let mut tuples = Vec::new();
        let mut obj = spec.new_object();
        let mut t = 0i64;
        for i in &ops {
            let meta = &metas[i % metas.len()];
            let args = spec.suggested_args(meta.name);
            let arg = args[i % args.len()].clone();
            let ret = obj.apply(meta.name, &arg);
            tuples.push((0usize, lintime_adt::spec::OpInstance { op: meta.name, arg, ret }, t, t + 5));
            t += 10;
        }
        let h = History::from_tuples(tuples);
        prop_assert!(check(&spec, &h).is_linearizable());
    }

    #[test]
    fn smoke_arbitrary_single_ops(inv_idx in 0usize..3, seed in 0u64..20) {
        // One arbitrary operation alone always completes within its bound.
        let p = params();
        let spec = erase(FifoQueue::new());
        let inv = match inv_idx {
            0 => Invocation::new("enqueue", 1),
            1 => Invocation::nullary("peek"),
            _ => Invocation::nullary("dequeue"),
        };
        let class = spec.op_meta(inv.op).unwrap().class;
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_schedule(Schedule::new().at(Pid(0), Time::ZERO, inv));
        let run = run_algorithm(Algorithm::Wtlw { x: Time(1200) }, &spec, &cfg);
        prop_assert!(run.complete());
        prop_assert_eq!(
            run.ops[0].latency().unwrap(),
            predicted_latency(p, Time(1200), class)
        );
    }
}

// Keep the unused strategy helper exercised (it is useful for downstream
// crates writing their own properties).
#[test]
fn arb_op_strategy_smoke() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let spec = erase(FifoQueue::new());
    let mut runner = TestRunner::deterministic();
    for _ in 0..10 {
        let inv = arb_op_for(Arc::clone(&spec))
            .new_tree(&mut runner)
            .unwrap()
            .current();
        assert!(spec.op_meta(inv.op).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn corrupted_returns_are_rejected(seed in 0u64..200, type_idx in 0usize..9, victim in 0usize..12) {
        // Take a real (linearizable) run, replace one value-bearing return
        // with an impossible value: the checker must reject.
        let p = params();
        let spec = all_types().swap_remove(type_idx);
        let run = lintime_bench::experiments::random_workload_run(p, &spec, seed);
        let mut history = History::from_run(&run).unwrap();
        let candidates: Vec<usize> = history
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                spec.op_meta(o.instance.op).is_some_and(|m| m.has_ret)
            })
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!candidates.is_empty());
        let idx = candidates[victim % candidates.len()];
        // No suggested argument universe reaches this value, so no
        // linearization can produce it.
        history.ops[idx].instance.ret = Value::Int(987_654_321);
        prop_assert_eq!(
            check(&spec, &history),
            Verdict::NotLinearizable,
            "corruption at {} of {} undetected",
            idx,
            spec.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    #[test]
    fn history_based_execution_matches_state_based(
        seeds in proptest::collection::vec(0usize..1000, 0..10),
        type_idx in 0usize..9,
    ) {
        // The paper's literal execute_Locally (history replay, Algorithm 1
        // lines 30–33) and our canonical-state execution must agree on every
        // return value and canonical state.
        use lintime_adt::spec::HistoryObject;
        let spec = all_types().swap_remove(type_idx);
        let metas = spec.ops().to_vec();
        let mut by_state = spec.new_object();
        let mut by_history = HistoryObject::new(std::sync::Arc::clone(&spec));
        for i in &seeds {
            let meta = &metas[i % metas.len()];
            let args = spec.suggested_args(meta.name);
            let arg = args[i % args.len()].clone();
            let a = by_state.apply(meta.name, &arg);
            let b = by_history.apply(meta.name, &arg);
            prop_assert_eq!(a, b, "{} {}", spec.name(), meta.name);
            prop_assert_eq!(by_state.canonical(), by_history.canonical());
        }
    }
}
