//! Property-style tests (deterministic seeded sweeps) on the core invariants:
//!
//! * sequential specifications: prefix closure / determinism / FIFO-LIFO laws;
//! * Theorem 1 identities for random shift vectors;
//! * chop validity (Lemma 2) for random delay matrices;
//! * Algorithm 1 linearizability under randomized schedules, delays, skews,
//!   and X (Theorem 6);
//! * checker ↔ construction agreement.
//!
//! Each test enumerates a fixed range of case indices and derives all inputs
//! from a [`SplitMix64`] stream seeded by the case index, so failures are
//! reproducible by construction.

use lintime_adt::prelude::*;
use lintime_check::prelude::*;
use lintime_core::prelude::*;
use lintime_sim::fragment::{chop, Fragment};
use lintime_sim::prelude::*;
use std::sync::Arc;

fn params() -> ModelParams {
    ModelParams::default_experiment()
}

/// A random invocation for the given type, drawn from its suggested-argument
/// universe (useful for downstream crates writing their own sweeps).
fn arb_op_for(spec: &Arc<dyn ObjectSpec>, rng: &mut SplitMix64) -> Invocation {
    let metas = spec.ops();
    let meta = &metas[rng.gen_range(0..metas.len())];
    let args = spec.suggested_args(meta.name);
    Invocation::new(meta.name, args[rng.gen_range(0..args.len())].clone())
}

fn arb_values(rng: &mut SplitMix64) -> Vec<i64> {
    let len = rng.gen_range(1..8usize);
    (0..len).map(|_| rng.gen_range(0i64..100)).collect()
}

#[test]
fn queue_fifo_law() {
    // Enqueue all, then dequeue all: exact FIFO order.
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(case);
        let values = arb_values(&mut rng);
        let q = FifoQueue::new();
        let mut invs: Vec<Invocation> =
            values.iter().map(|v| Invocation::new("enqueue", *v)).collect();
        invs.extend(values.iter().map(|_| Invocation::nullary("dequeue")));
        let (_, insts) = q.run(&invs);
        let dequeued: Vec<i64> =
            insts[values.len()..].iter().filter_map(|i| i.ret.as_int()).collect();
        assert_eq!(dequeued, values, "case {case}");
    }
}

#[test]
fn stack_lifo_law() {
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(1000 + case);
        let values = arb_values(&mut rng);
        let s = Stack::new();
        let mut invs: Vec<Invocation> =
            values.iter().map(|v| Invocation::new("push", *v)).collect();
        invs.extend(values.iter().map(|_| Invocation::nullary("pop")));
        let (_, insts) = s.run(&invs);
        let popped: Vec<i64> =
            insts[values.len()..].iter().filter_map(|i| i.ret.as_int()).collect();
        let mut expect = values.clone();
        expect.reverse();
        assert_eq!(popped, expect, "case {case}");
    }
}

#[test]
fn specs_are_deterministic() {
    // Running the same invocation sequence twice gives identical results.
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(2000 + case);
        let len = rng.gen_range(0..10usize);
        let seed_ops: Vec<usize> = (0..len).map(|_| rng.gen_range(0..100usize)).collect();
        for spec in all_types() {
            let metas = spec.ops();
            let invs: Vec<Invocation> = seed_ops
                .iter()
                .map(|i| {
                    let meta = &metas[i % metas.len()];
                    let args = spec.suggested_args(meta.name);
                    Invocation::new(meta.name, args[i % args.len()].clone())
                })
                .collect();
            assert_eq!(spec.run_history(&invs), spec.run_history(&invs));
        }
    }
}

#[test]
fn theorem_1_identities() {
    // shift(R, x̄): offsets become c − x, matrix delays δ − x_i + x_j.
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(3000 + case);
        let p = params();
        let x = vec![
            Time(rng.gen_range(-900i64..900)),
            Time(rng.gen_range(-900i64..900)),
            Time(rng.gen_range(-900i64..900)),
            Time::ZERO,
        ];
        let base = rng.gen_range(0i64..2400);
        let delay = DelaySpec::Constant(p.min_delay() + Time(base));
        let cfg = SimConfig::new(p, delay);
        let shifted = cfg.shifted(&x);
        let m = shifted.delay.as_matrix().unwrap();
        for i in 0..p.n {
            assert_eq!(shifted.offsets[i], cfg.offsets[i] - x[i]);
            for j in 0..p.n {
                if i != j {
                    assert_eq!(m[i][j], p.min_delay() + Time(base) - x[i] + x[j]);
                }
            }
        }
        // Shifting by −x̄ undoes the transform.
        let neg: Vec<Time> = x.iter().map(|t| -*t).collect();
        let back = shifted.shifted(&neg);
        assert_eq!(back.offsets, cfg.offsets);
        assert_eq!(back.delay.to_matrix(p), cfg.delay.to_matrix(p));
    }
}

#[test]
fn record_level_shift_matches_reexecution() {
    for case in 0u64..24 {
        let mut rng = SplitMix64::seed_from_u64(4000 + case);
        let p = params();
        let spec = erase(Register::new(0));
        let schedule = Schedule::new()
            .at(Pid(0), Time(0), Invocation::new("write", 5))
            .at(Pid(1), Time(7), Invocation::nullary("read"))
            .at(Pid(2), Time(25_000), Invocation::nullary("read"));
        let seed = rng.gen_range(0u64..50);
        let base_delay =
            p.min_delay() + Time((seed as i64 * 37) % (p.u.as_ticks() / 2)) + Time(600);
        let cfg = SimConfig::new(p, DelaySpec::Constant(base_delay))
            .with_schedule(schedule)
            .recording_all();
        let base = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg);
        assert!(base.complete(), "case {case}");

        let x = vec![
            Time(rng.gen_range(-450i64..450)),
            Time(rng.gen_range(-450i64..450)),
            Time::ZERO,
            Time::ZERO,
        ];
        let re = run_algorithm(Algorithm::Wtlw { x: Time::ZERO }, &spec, &cfg.shifted(&x));
        let mut surgery = base.shifted(&x).ops;
        assert!(base.views_equal(&re), "case {case}: views change under shift");
        let mut reexec = re.ops.clone();
        surgery.sort_by_key(|o| (o.pid, o.t_invoke));
        reexec.sort_by_key(|o| (o.pid, o.t_invoke));
        for (a, b) in surgery.iter().zip(&reexec) {
            assert_eq!(a.t_invoke, b.t_invoke);
            assert_eq!(a.t_respond, b.t_respond);
            assert_eq!(&a.ret, &b.ret);
        }
    }
}

#[test]
fn chop_satisfies_lemma_2() {
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(5000 + case);
        let p = params();
        let bad_extra = rng.gen_range(1i64..2400);
        let delta_off = rng.gen_range(0i64..2400);
        let s = rng.gen_range(0..4usize);
        let r = rng.gen_range(0..4usize);
        if s == r {
            continue;
        }
        // Pair-wise uniform matrix with exactly one invalid (too large) delay.
        let mut matrix = vec![vec![p.d; p.n]; p.n];
        matrix[s][r] = p.d + Time(bad_extra);
        // A run in which every process messages every other at time 0.
        let msgs: Vec<MsgRecord> = (0..p.n)
            .flat_map(|i| (0..p.n).filter(move |j| *j != i).map(move |j| (i, j)))
            .map(|(i, j)| MsgRecord {
                from: Pid(i),
                to: Pid(j),
                t_send: Time((i * 7 + j) as i64),
                t_recv: Some(Time((i * 7 + j) as i64) + matrix[i][j]),
            })
            .collect();
        let run = Run {
            params: p,
            offsets: vec![Time::ZERO; p.n],
            ops: Vec::new(),
            msgs,
            views: Vec::new(),
            last_time: Time(100_000),
            events: 0,
            errors: Vec::new(),
            delay_violations: 1,
            truncated: false,
            crashed_pending: 0,
            unadmitted: 0,
            msgs_sent: 0,
            bytes_sent: 0,
            faults: Vec::new(),
            suspect: Vec::new(),
        };
        let delta = p.min_delay() + Time(delta_off);
        let frag: Fragment = chop(&run, &matrix, Pid(s), Pid(r), delta).unwrap();
        assert!(frag.verify_lemma2(p).is_ok(), "case {case}: {:?}", frag.verify_lemma2(p));
    }
}

#[test]
fn wtlw_always_linearizable() {
    // Theorem 6 as a property: random schedule, random delays, random
    // admissible skew, random X — every run linearizes.
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(6000 + case);
        let p = params();
        let spec = erase(FifoQueue::new());
        let seed = rng.gen_range(0u64..500);
        let x_frac = rng.gen_range(0i64..=4);
        let skew_seed = rng.gen_range(0u64..100);
        let x = Time((p.d - p.epsilon).as_ticks() * x_frac / 4);
        let mut schedule = Schedule::new();
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let mut free = vec![Time::ZERO; p.n];
        for _ in 0..8 {
            let pid = (next() % p.n as u64) as usize;
            let at = free[pid] + Time((next() % (2 * p.d.as_ticks() as u64)) as i64);
            let inv = match next() % 3 {
                0 => Invocation::new("enqueue", (next() % 50) as i64),
                1 => Invocation::nullary("peek"),
                _ => Invocation::nullary("dequeue"),
            };
            schedule = schedule.at(Pid(pid), at, inv);
            free[pid] = at + p.d + p.u + p.epsilon + Time(1);
        }
        let offsets: Vec<Time> = (0..p.n)
            .map(|i| {
                Time(
                    ((skew_seed.wrapping_mul(31).wrapping_add(i as u64 * 97))
                        % (p.epsilon.as_ticks() as u64 + 1)) as i64,
                )
            })
            .collect();
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_offsets(offsets)
            .with_schedule(schedule);
        assert!(cfg.admissible().is_ok());
        let run = run_algorithm(Algorithm::Wtlw { x }, &spec, &cfg);
        assert!(run.complete(), "case {case}");
        assert!(run.errors.is_empty(), "case {case}: {:?}", run.errors);
        let history = History::from_run(&run).unwrap();
        assert!(check(&spec, &history).is_linearizable(), "case {case}: {run}");
    }
}

#[test]
fn arbitrary_sequential_histories_linearize_trivially() {
    // Any *sequential* history generated by the spec itself is
    // linearizable (sanity link between spec and checker).
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(7000 + case);
        let type_idx = rng.gen_range(0..7usize);
        let len = rng.gen_range(1..10usize);
        let ops: Vec<usize> = (0..len).map(|_| rng.gen_range(0..64usize)).collect();
        let spec = all_types().swap_remove(type_idx);
        let metas = spec.ops().to_vec();
        let mut tuples = Vec::new();
        let mut obj = spec.new_object();
        let mut t = 0i64;
        for i in &ops {
            let meta = &metas[i % metas.len()];
            let args = spec.suggested_args(meta.name);
            let arg = args[i % args.len()].clone();
            let ret = obj.apply(meta.name, &arg);
            tuples.push((
                0usize,
                lintime_adt::spec::OpInstance { op: meta.name, arg, ret },
                t,
                t + 5,
            ));
            t += 10;
        }
        let h = History::from_tuples(tuples);
        assert!(check(&spec, &h).is_linearizable(), "case {case}");
    }
}

#[test]
fn smoke_arbitrary_single_ops() {
    // One arbitrary operation alone always completes within its bound.
    for case in 0u64..48 {
        let mut rng = SplitMix64::seed_from_u64(8000 + case);
        let inv_idx = rng.gen_range(0..3usize);
        let seed = rng.gen_range(0u64..20);
        let p = params();
        let spec = erase(FifoQueue::new());
        let inv = match inv_idx {
            0 => Invocation::new("enqueue", 1),
            1 => Invocation::nullary("peek"),
            _ => Invocation::nullary("dequeue"),
        };
        let class = spec.op_meta(inv.op).unwrap().class;
        let cfg = SimConfig::new(p, DelaySpec::UniformRandom { seed })
            .with_schedule(Schedule::new().at(Pid(0), Time::ZERO, inv));
        let run = run_algorithm(Algorithm::Wtlw { x: Time(1200) }, &spec, &cfg);
        assert!(run.complete(), "case {case}");
        assert_eq!(run.ops[0].latency().unwrap(), predicted_latency(p, Time(1200), class));
    }
}

// Keep the invocation-sampling helper exercised (it is useful for downstream
// crates writing their own sweeps).
#[test]
fn arb_op_sampler_smoke() {
    let spec = erase(FifoQueue::new());
    let mut rng = SplitMix64::seed_from_u64(42);
    for _ in 0..10 {
        let inv = arb_op_for(&spec, &mut rng);
        assert!(spec.op_meta(inv.op).is_some());
    }
}

#[test]
fn corrupted_returns_are_rejected() {
    // Take a real (linearizable) run, replace one value-bearing return
    // with an impossible value: the checker must reject.
    for case in 0u64..32 {
        let mut rng = SplitMix64::seed_from_u64(9000 + case);
        let seed = rng.gen_range(0u64..200);
        let type_idx = rng.gen_range(0..9usize);
        let victim = rng.gen_range(0..12usize);
        let p = params();
        let spec = all_types().swap_remove(type_idx);
        let run = lintime_bench::experiments::random_workload_run(p, &spec, seed);
        let mut history = History::from_run(&run).unwrap();
        let candidates: Vec<usize> = history
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| spec.op_meta(o.instance.op).is_some_and(|m| m.has_ret))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let idx = candidates[victim % candidates.len()];
        // No suggested argument universe reaches this value, so no
        // linearization can produce it.
        history.ops[idx].instance.ret = Value::Int(987_654_321);
        assert_eq!(
            check(&spec, &history),
            Verdict::NotLinearizable,
            "case {case}: corruption at {} of {} undetected",
            idx,
            spec.name()
        );
    }
}

#[test]
fn history_based_execution_matches_state_based() {
    // The paper's literal execute_Locally (history replay, Algorithm 1
    // lines 30–33) and our canonical-state execution must agree on every
    // return value and canonical state.
    use lintime_adt::spec::HistoryObject;
    for case in 0u64..40 {
        let mut rng = SplitMix64::seed_from_u64(10_000 + case);
        let type_idx = rng.gen_range(0..9usize);
        let len = rng.gen_range(0..10usize);
        let seeds: Vec<usize> = (0..len).map(|_| rng.gen_range(0..1000usize)).collect();
        let spec = all_types().swap_remove(type_idx);
        let metas = spec.ops().to_vec();
        let mut by_state = spec.new_object();
        let mut by_history = HistoryObject::new(std::sync::Arc::clone(&spec));
        for i in &seeds {
            let meta = &metas[i % metas.len()];
            let args = spec.suggested_args(meta.name);
            let arg = args[i % args.len()].clone();
            let a = by_state.apply(meta.name, &arg);
            let b = by_history.apply(meta.name, &arg);
            assert_eq!(a, b, "case {case}: {} {}", spec.name(), meta.name);
            assert_eq!(by_state.canonical(), by_history.canonical());
        }
    }
}
