//! Integration tests over the experiment reports themselves: every table and
//! figure generator must produce its expected rows, and the internal shape
//! assertions (crossovers, formula matches) must hold. These are the same
//! code paths the `lintime-bench` binaries print.

use lintime_bench::experiments;

#[test]
fn table1_reproduces() {
    let r = experiments::table1_report();
    assert!(r.contains("Read-Modify-Write"));
    assert!(r.contains("7800 (Thm 4)")); // d + m at default params
    assert!(r.contains("(1 - 1/n)u") || r.contains("Thm 3"));
    // Measured column is exact: RMW = d + ε = 7800.
    let rmw_line = r.lines().find(|l| l.trim_start().starts_with("Read-Modify-Write")).unwrap();
    assert!(rmw_line.trim_end().ends_with("7800"), "{rmw_line}");
}

#[test]
fn table2_and_3_reproduce() {
    let r2 = experiments::table2_report();
    assert!(r2.contains("Enqueue + Peek"));
    assert!(r2.contains("Thm 5"));
    let r3 = experiments::table3_report();
    assert!(r3.contains("Push + Peek"));
    // The stack sum row must NOT carry a Theorem 5 bound.
    let row = r3.lines().find(|l| l.contains("Push + Peek")).unwrap();
    assert!(!row.contains("Thm 5"), "{row}");
}

#[test]
fn table4_reports_certified_k() {
    let r = experiments::table4_report();
    assert!(r.contains("Insert + Depth"));
    assert!(r.contains("insert k = 4"));
    assert!(r.contains("delete k = 2"));
}

#[test]
fn table5_summarizes_classes() {
    let r = experiments::table5_report();
    assert!(r.contains("Pure accessor"));
    assert!(r.contains("Pair-free"));
    assert!(r.contains("Transposable"));
}

#[test]
fn fig11_is_consistent() {
    let r = experiments::fig11_report();
    assert!(r.contains("all declared classes match the computed classes ✓"));
}

#[test]
fn folklore_comparison_shape() {
    // Contains its own assertions (Algorithm 1 beats both baselines).
    let r = experiments::folklore_report();
    assert!(r.contains("beats both folklore baselines"));
}

#[test]
fn x_tradeoff_formulas_hold() {
    let r = experiments::x_tradeoff_report();
    assert!(r.contains("equal the Lemma 4 formulas"));
}

#[test]
fn clocksync_within_bound() {
    let r = experiments::clocksync_report();
    assert!(r.contains("within the optimal bound"));
}

#[test]
fn linearizability_sweep_clean() {
    let r = experiments::linearizability_sweep_report(3);
    assert!(r.contains("all linearizable ✓"));
}

#[test]
fn kv_extension_table() {
    let r = experiments::table_kv_report();
    assert!(r.contains("Put + Get"));
    assert!(r.contains("Thm 5"));
    // del has no lower bound.
    let del = r.lines().find(|l| l.trim_start().starts_with("Del")).unwrap();
    assert!(!del.contains("Thm"), "{del}");
}

#[test]
fn throughput_extension() {
    let r = experiments::throughput_report();
    assert!(r.contains("folklore rate"));
}

#[test]
fn n_scaling_extension() {
    let r = experiments::n_scaling_report();
    assert!(r.contains("tight"));
}

#[test]
fn workload_mix_extension() {
    let r = experiments::workload_mix_report();
    assert!(r.contains("X tuning follows the mix"));
}

#[test]
#[ignore = "slow: full lower-bound sweeps; run with --ignored or --include-ignored"]
fn lower_bound_crossovers() {
    // The report asserts internally that violations occur exactly below each
    // bound.
    let r = experiments::lower_bounds_report();
    assert!(r.matches("crossover matches the formula").count() == 4);
}
